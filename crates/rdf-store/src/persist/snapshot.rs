//! The checksummed binary snapshot: a full dump of the interner and the
//! explicit triple set.
//!
//! ```text
//! magic   8 bytes  b"RDFASNP1"
//! version u32      format version (currently 1)
//! count   u32      number of sections
//! section *        tag u32 | len u64 | crc32 u32 | payload (len bytes)
//! ```
//!
//! Sections: `TERMS` (tag 1) — `u32` term count, then each term as a tag
//! byte (`0` IRI, `1` blank, `2` literal) followed by length-prefixed UTF-8
//! strings; `TRIPLES` (tag 2) — `u64` triple count, then three `u32` term
//! ids per triple in SPO order. Every section's CRC-32 is verified on read;
//! a mismatch is a typed [`PersistError::Checksum`], never a partial load.
//! The inferred layer is *not* stored — it is rematerialized on open.

use super::crash::CrashInjector;
use super::crc::crc32;
use super::PersistError;
use crate::index::TripleIndex;
use crate::interner::{Interner, TermId};
use crate::store::Store;
use rdfa_model::{ntriples, Literal, Term};
use std::fs::File;
use std::io::Write;
use std::path::Path;

pub(crate) const MAGIC: &[u8; 8] = b"RDFASNP1";
pub(crate) const VERSION: u32 = 1;
const SECTION_TERMS: u32 = 1;
const SECTION_TRIPLES: u32 = 2;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn encode_terms(store: &Store) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(store.term_count() as u32).to_le_bytes());
    for (_, term) in store.terms() {
        match term {
            Term::Iri(iri) => {
                buf.push(0);
                put_str(&mut buf, iri);
            }
            Term::Blank(label) => {
                buf.push(1);
                put_str(&mut buf, label);
            }
            Term::Literal(l) => {
                buf.push(2);
                put_str(&mut buf, &l.lexical);
                put_str(&mut buf, &l.datatype);
                match &l.lang {
                    Some(lang) => {
                        buf.push(1);
                        put_str(&mut buf, lang);
                    }
                    None => buf.push(0),
                }
            }
        }
    }
    buf
}

fn encode_triples(store: &Store) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + store.len() * 12);
    buf.extend_from_slice(&(store.len() as u64).to_le_bytes());
    for [s, p, o] in store.iter_explicit() {
        buf.extend_from_slice(&s.0.to_le_bytes());
        buf.extend_from_slice(&p.0.to_le_bytes());
        buf.extend_from_slice(&o.0.to_le_bytes());
    }
    buf
}

/// Write a snapshot of `store` to `file`, pausing at the labeled crash
/// points. The file is *not* fsynced here — the checkpoint sequence owns
/// durability and atomic-rename ordering.
pub(crate) fn write_snapshot(
    store: &Store,
    file: &mut File,
    crash: &CrashInjector,
) -> Result<(), PersistError> {
    let io = |e: std::io::Error| PersistError::Io { context: "snapshot write", source: e };
    let sections = [
        (SECTION_TERMS, encode_terms(store)),
        (SECTION_TRIPLES, encode_triples(store)),
    ];
    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    file.write_all(&header).map_err(io)?;
    crash.check("snapshot.header")?;
    for (i, (tag, payload)) in sections.iter().enumerate() {
        let mut head = Vec::with_capacity(16);
        head.extend_from_slice(&tag.to_le_bytes());
        head.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        head.extend_from_slice(&crc32(payload).to_le_bytes());
        file.write_all(&head).map_err(io)?;
        let half = payload.len() / 2;
        file.write_all(&payload[..half]).map_err(io)?;
        if i == 0 {
            // a tear in the middle of the first section's payload
            crash.check("snapshot.torn-section")?;
        }
        file.write_all(&payload[half..]).map_err(io)?;
    }
    crash.check("snapshot.written")?;
    Ok(())
}

/// A bounds-checked little-endian cursor over an immutable byte buffer.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or(
            PersistError::Corrupt {
                what: self.what,
                detail: format!("truncated: wanted {n} bytes at offset {}", self.pos),
            },
        )?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<&'a str, PersistError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|e| PersistError::Corrupt {
            what: self.what,
            detail: format!("invalid UTF-8 in string: {e}"),
        })
    }
}

fn decode_terms(payload: &[u8]) -> Result<Interner, PersistError> {
    let mut cur = Cursor { buf: payload, pos: 0, what: "snapshot terms" };
    let count = cur.u32()? as usize;
    let mut interner = Interner::new();
    for i in 0..count {
        let term = match cur.u8()? {
            0 => Term::iri(cur.str()?),
            1 => Term::blank(cur.str()?),
            2 => {
                let lexical = cur.str()?.to_owned();
                let datatype = cur.str()?.to_owned();
                let lang = match cur.u8()? {
                    0 => None,
                    1 => Some(cur.str()?.to_owned()),
                    other => {
                        return Err(PersistError::Corrupt {
                            what: "snapshot terms",
                            detail: format!("bad lang flag {other} in term {i}"),
                        })
                    }
                };
                Term::Literal(Literal { lexical, datatype, lang })
            }
            other => {
                return Err(PersistError::Corrupt {
                    what: "snapshot terms",
                    detail: format!("bad term tag {other} in term {i}"),
                })
            }
        };
        let id = interner.get_or_intern(&term);
        if id.idx() != i {
            return Err(PersistError::Corrupt {
                what: "snapshot terms",
                detail: format!("duplicate term at index {i}"),
            });
        }
    }
    Ok(interner)
}

fn decode_triples(payload: &[u8], terms: usize) -> Result<TripleIndex, PersistError> {
    let mut cur = Cursor { buf: payload, pos: 0, what: "snapshot triples" };
    let count = cur.u64()?;
    let mut index = TripleIndex::new();
    for i in 0..count {
        let (s, p, o) = (cur.u32()?, cur.u32()?, cur.u32()?);
        if s as usize >= terms || p as usize >= terms || o as usize >= terms {
            return Err(PersistError::Corrupt {
                what: "snapshot triples",
                detail: format!("triple {i} references a term id beyond the term table"),
            });
        }
        index.insert([TermId(s), TermId(p), TermId(o)]);
    }
    Ok(index)
}

/// Read and verify a snapshot file, reconstructing the store's explicit
/// layer. The returned store is *dirty* — the caller rematerializes the
/// RDFS closure after any WAL replay.
pub(crate) fn read_snapshot(path: &Path) -> Result<Store, PersistError> {
    let bytes = std::fs::read(path)
        .map_err(|e| PersistError::Io { context: "snapshot read", source: e })?;
    let mut cur = Cursor { buf: &bytes, pos: 0, what: "snapshot header" };
    let magic = cur.take(8)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic { found: magic.to_vec() });
    }
    let version = cur.u32()?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let sections = cur.u32()?;
    let mut interner: Option<Interner> = None;
    let mut triples_payload: Option<&[u8]> = None;
    for _ in 0..sections {
        cur.what = "snapshot section";
        let tag = cur.u32()?;
        let len = cur.u64()? as usize;
        let expected = cur.u32()?;
        let payload = cur.take(len)?;
        let found = crc32(payload);
        if found != expected {
            return Err(PersistError::Checksum {
                what: if tag == SECTION_TERMS { "snapshot terms section" } else { "snapshot triples section" },
                expected,
                found,
            });
        }
        match tag {
            SECTION_TERMS => interner = Some(decode_terms(payload)?),
            SECTION_TRIPLES => triples_payload = Some(payload),
            _ => {} // unknown sections are skipped (forward compatibility)
        }
    }
    let interner = interner.ok_or(PersistError::Corrupt {
        what: "snapshot",
        detail: "missing terms section".to_owned(),
    })?;
    let payload = triples_payload.ok_or(PersistError::Corrupt {
        what: "snapshot",
        detail: "missing triples section".to_owned(),
    })?;
    let explicit = decode_triples(payload, interner.len())?;
    Ok(Store::from_layers(interner, explicit))
}

/// The N-Triples fallback exporter: a human-readable, tool-compatible dump
/// of the explicit triples, usable when the binary snapshot cannot be (a
/// version from the future, external tooling, manual recovery).
pub(crate) fn export_ntriples(store: &Store, path: &Path) -> Result<(), PersistError> {
    let io = |e: std::io::Error| PersistError::Io { context: "ntriples export", source: e };
    let text = ntriples::serialize(&store.to_graph());
    let mut file = File::create(path).map_err(io)?;
    file.write_all(text.as_bytes()).map_err(io)?;
    file.sync_all().map_err(io)?;
    Ok(())
}
