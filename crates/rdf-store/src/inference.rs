//! RDFS closure materialization.
//!
//! Implements the entailment rules the paper's model leverages (§2.1, §5.2.1):
//!
//! - **rdfs5/rdfs11** — transitivity of `rdfs:subPropertyOf` / `rdfs:subClassOf`
//! - **rdfs7** — property inheritance: `(s p o), (p ⊑ q) ⟹ (s q o)`
//! - **rdfs9** — type propagation: `(x type c), (c ⊑ d) ⟹ (x type d)`
//! - **rdfs2/rdfs3** — domain/range typing: `(p domain c), (s p o) ⟹ (s type c)`
//!   (range analogously for resource objects), both lifted through
//!   superproperties.
//!
//! The closure is computed in one pass over the data after the subsumption
//! DAGs are transitively closed — no global fixpoint is needed because the
//! rule dependencies are acyclic once the two closures are available.

use crate::index::{IdTriple, TripleIndex};
use crate::interner::TermId;
use crate::store::WellKnown;
use std::collections::{HashMap, HashSet};

/// Compute the inferred-triples layer (triples entailed but not asserted).
pub fn compute_closure(explicit: &TripleIndex, wk: WellKnown) -> TripleIndex {
    let sub_class = transitive_closure(explicit, wk.rdfs_subclassof);
    let sub_prop = transitive_closure(explicit, wk.rdfs_subpropertyof);

    // effective domains/ranges per property, inherited from superproperties
    let mut domains: HashMap<TermId, HashSet<TermId>> = HashMap::new();
    let mut ranges: HashMap<TermId, HashSet<TermId>> = HashMap::new();
    for [p, _, c] in explicit.matching(None, Some(wk.rdfs_domain), None) {
        domains.entry(p).or_default().insert(c);
    }
    for [p, _, c] in explicit.matching(None, Some(wk.rdfs_range), None) {
        ranges.entry(p).or_default().insert(c);
    }

    let supers_of = |clo: &HashMap<TermId, HashSet<TermId>>, x: TermId| -> Vec<TermId> {
        clo.get(&x).map(|s| s.iter().copied().collect()).unwrap_or_default()
    };

    let mut inferred = TripleIndex::new();
    let mut add = |t: IdTriple, explicit: &TripleIndex| {
        if !explicit.contains(t) {
            inferred.insert(t);
        }
    };

    // materialize the transitive subsumption triples themselves
    for (&c, sups) in &sub_class {
        for &d in sups {
            add([c, wk.rdfs_subclassof, d], explicit);
        }
    }
    for (&p, sups) in &sub_prop {
        for &q in sups {
            add([p, wk.rdfs_subpropertyof, q], explicit);
        }
    }

    // single pass over the data triples
    for [s, p, o] in explicit.iter() {
        if p == wk.rdf_type {
            // rdfs9: propagate to superclasses
            for d in supers_of(&sub_class, o) {
                add([s, wk.rdf_type, d], explicit);
            }
            continue;
        }
        if p == wk.rdfs_subclassof || p == wk.rdfs_subpropertyof {
            continue; // handled above
        }
        // all properties entailed for this triple: p plus its superproperties
        let mut effective = vec![p];
        effective.extend(supers_of(&sub_prop, p));
        for &q in &effective {
            if q != p {
                // rdfs7
                add([s, q, o], explicit);
            }
            // rdfs2 + rdfs9
            if let Some(cs) = domains.get(&q) {
                for &c in cs {
                    add([s, wk.rdf_type, c], explicit);
                    for d in supers_of(&sub_class, c) {
                        add([s, wk.rdf_type, d], explicit);
                    }
                }
            }
            // rdfs3 + rdfs9 (only for resource objects; literals have no type
            // triples in our model)
            if let Some(cs) = ranges.get(&q) {
                for &c in cs {
                    add([o, wk.rdf_type, c], explicit);
                    for d in supers_of(&sub_class, c) {
                        add([o, wk.rdf_type, d], explicit);
                    }
                }
            }
        }
    }
    inferred
}

/// Proper transitive closure of a binary relation stored as triples with
/// predicate `pred`: maps each node to the set of its *proper* ancestors
/// (excluding itself unless a cycle makes it its own ancestor).
fn transitive_closure(
    index: &TripleIndex,
    pred: TermId,
) -> HashMap<TermId, HashSet<TermId>> {
    let mut direct: HashMap<TermId, Vec<TermId>> = HashMap::new();
    for [s, _, o] in index.matching(None, Some(pred), None) {
        if s != o {
            direct.entry(s).or_default().push(o);
        }
    }
    let mut closure: HashMap<TermId, HashSet<TermId>> = HashMap::new();
    for &start in direct.keys() {
        let mut seen: HashSet<TermId> = HashSet::new();
        let mut stack: Vec<TermId> = direct.get(&start).cloned().unwrap_or_default();
        while let Some(n) = stack.pop() {
            if seen.insert(n) {
                if let Some(next) = direct.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        seen.remove(&start);
        closure.insert(start, seen);
    }
    closure
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use rdfa_model::Term;

    const EX: &str = "http://example.org/";

    fn id(store: &mut Store, local: &str) -> TermId {
        store.intern(&Term::iri(format!("{EX}{local}")))
    }

    #[test]
    fn domain_and_range_typing() {
        let mut store = Store::new();
        store
            .load_turtle(&format!(
                r#"
                @prefix ex: <{EX}> .
                @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
                ex:manufacturer rdfs:domain ex:Product ; rdfs:range ex:Company .
                ex:laptop1 ex:manufacturer ex:DELL .
                "#
            ))
            .unwrap();
        let laptop1 = id(&mut store, "laptop1");
        let dell = id(&mut store, "DELL");
        let product = id(&mut store, "Product");
        let company = id(&mut store, "Company");
        let wk = store.well_known();
        assert!(store.contains([laptop1, wk.rdf_type, product]));
        assert!(store.contains([dell, wk.rdf_type, company]));
    }

    #[test]
    fn deep_subclass_chain() {
        let mut store = Store::new();
        store
            .load_turtle(&format!(
                r#"
                @prefix ex: <{EX}> .
                @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
                ex:A rdfs:subClassOf ex:B . ex:B rdfs:subClassOf ex:C .
                ex:C rdfs:subClassOf ex:D .
                ex:x a ex:A .
                "#
            ))
            .unwrap();
        let x = id(&mut store, "x");
        let wk = store.well_known();
        for cls in ["B", "C", "D"] {
            let c = id(&mut store, cls);
            assert!(store.contains([x, wk.rdf_type, c]), "x should be a {cls}");
        }
        // transitive subclass triple materialized
        let a = id(&mut store, "A");
        let d = id(&mut store, "D");
        assert!(store.contains([a, wk.rdfs_subclassof, d]));
    }

    #[test]
    fn subproperty_with_inherited_domain() {
        let mut store = Store::new();
        store
            .load_turtle(&format!(
                r#"
                @prefix ex: <{EX}> .
                @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
                ex:producer rdfs:domain ex:Artifact .
                ex:manufacturer rdfs:subPropertyOf ex:producer .
                ex:l ex:manufacturer ex:DELL .
                "#
            ))
            .unwrap();
        let l = id(&mut store, "l");
        let artifact = id(&mut store, "Artifact");
        let producer = id(&mut store, "producer");
        let dell = id(&mut store, "DELL");
        let wk = store.well_known();
        assert!(store.contains([l, producer, dell]));
        assert!(store.contains([l, wk.rdf_type, artifact]));
    }

    #[test]
    fn cyclic_subclass_terminates() {
        let mut store = Store::new();
        store
            .load_turtle(&format!(
                r#"
                @prefix ex: <{EX}> .
                @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
                ex:A rdfs:subClassOf ex:B . ex:B rdfs:subClassOf ex:A .
                ex:x a ex:A .
                "#
            ))
            .unwrap();
        let x = id(&mut store, "x");
        let b = id(&mut store, "B");
        let wk = store.well_known();
        assert!(store.contains([x, wk.rdf_type, b]));
    }

    #[test]
    fn no_spurious_inference_without_schema() {
        let mut store = Store::new();
        store
            .load_turtle(&format!("@prefix ex: <{EX}> . ex:a ex:p ex:b ."))
            .unwrap();
        assert_eq!(store.len_entailed(), store.len());
    }
}
