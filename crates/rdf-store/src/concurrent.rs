//! MVCC-style snapshot isolation over the [`Store`]: readers get cheap
//! immutable snapshots, writers publish new generations atomically.
//!
//! The interactive-analytics workload (continuous facet/query traffic with
//! interleaved updates — the SOFOS assumption) cannot afford a store-wide
//! reader/writer lock: one bulk `INSERT` stalls every reader, and a panic
//! inside a writer poisons the lock for everyone. [`SnapshotStore`] removes
//! both failure modes with a copy-on-write publish protocol:
//!
//! - **Readers** call [`SnapshotStore::snapshot`] and receive a [`Snapshot`]
//!   — an `Arc` over an immutable [`Store`]. Taking one is an `Arc` clone
//!   behind a pointer-sized critical section (nanoseconds); holding one
//!   never blocks anybody. A snapshot observes exactly one published
//!   generation, forever: queries, facet markers and serialization all see
//!   a single consistent state no matter what writers do meanwhile.
//! - **Writers** call [`SnapshotStore::begin_write`] (or the
//!   [`SnapshotStore::with_write`]/[`SnapshotStore::commit`] conveniences).
//!   A write transaction clones the current `Arc` and mutates it through
//!   `Arc::make_mut`: the first mutation pays one deep copy of the store
//!   (the published pointer always co-owns the base version — that copy is
//!   the price of never blocking a reader), and every further mutation in
//!   the same transaction works in place on the private version. Batching
//!   N mutations in one transaction costs one copy, not N. The copy itself
//!   is a memcpy of dense interned vectors, not a re-index. Publishing is a
//!   single pointer swap.
//! - **A writer panic publishes nothing.** The transaction's working copy
//!   is dropped during unwind and readers keep resolving against the last
//!   published generation. The internal writer mutex recovers from poison
//!   (it guards no data, only writer ordering), so the next writer proceeds
//!   normally. The same holds for fallible writers: an `Err` from
//!   [`SnapshotStore::commit`] rolls the whole batch back — updates are
//!   atomic, never partially visible.
//!
//! The existing [`Store::generation`] counter is the versioning spine:
//! every published generation carries a distinct counter value, so caches
//! keyed by generation (the facet cache) remain correct across snapshots.
//!
//! This mirrors the storage/transaction layering of Oxigraph (immutable
//! reader over a versioned store, transactions applied privately and
//! committed atomically), scaled down to the in-memory engine.

use crate::store::Store;
use std::ops::Deref;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// An immutable, consistently-versioned view of a [`Store`].
///
/// Cloning is an `Arc` clone. Dereferences to [`Store`], so the whole read
/// API (queries, posting runs, facet kernels, serialization) works on a
/// snapshot unchanged. Two snapshots with equal [`Snapshot::generation`]
/// are views of the identical store state.
#[derive(Debug, Clone)]
pub struct Snapshot(Arc<Store>);

impl Snapshot {
    /// The published generation this snapshot observes.
    pub fn generation(&self) -> u64 {
        self.0.generation()
    }

    /// The underlying shared store, for callers that need the `Arc` itself
    /// (e.g. to move a view into a worker thread without re-snapshotting).
    pub fn into_arc(self) -> Arc<Store> {
        self.0
    }
}

impl Deref for Snapshot {
    type Target = Store;

    fn deref(&self) -> &Store {
        &self.0
    }
}

impl From<Store> for Snapshot {
    fn from(store: Store) -> Self {
        Snapshot(Arc::new(store))
    }
}

/// A concurrent store: lock-free-in-practice snapshot reads, serialized
/// copy-on-write writers, atomic publication. See the module docs for the
/// protocol.
pub struct SnapshotStore {
    /// The published generation. The `RwLock` is held only for the duration
    /// of an `Arc` clone (readers) or a pointer swap (writers) — never
    /// across a query, a batch application, or I/O.
    current: RwLock<Arc<Store>>,
    /// Serializes writers. Guards no data — a poisoned guard (writer
    /// panicked) is recovered, because the published state is unaffected by
    /// definition: publication is the last step of a successful commit.
    writer: Mutex<()>,
}

impl SnapshotStore {
    /// Wrap a store for concurrent serving.
    pub fn new(store: Store) -> Self {
        SnapshotStore { current: RwLock::new(Arc::new(store)), writer: Mutex::new(()) }
    }

    /// The current published snapshot. Never blocks on writers applying
    /// batches — only on the instantaneous publish swap itself.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot(Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner())))
    }

    /// Generation of the current published snapshot.
    pub fn generation(&self) -> u64 {
        self.snapshot().generation()
    }

    /// Begin a write transaction: serializes against other writers, hands
    /// out a private working copy. Nothing is visible to readers until
    /// [`WriteTxn::commit`]; dropping the transaction rolls it back.
    pub fn begin_write(&self) -> WriteTxn<'_> {
        let guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let working = Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()));
        WriteTxn { owner: self, _guard: guard, working }
    }

    /// Apply `f` to a private copy and publish the result. A panic inside
    /// `f` publishes nothing; readers are unaffected.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut Store) -> R) -> R {
        let mut txn = self.begin_write();
        let r = f(txn.store_mut());
        txn.commit();
        r
    }

    /// Apply a fallible batch atomically: publish on `Ok`, roll back —
    /// leaving readers and future writers on the previous generation — on
    /// `Err`. This is what makes a failed `/v1/update` invisible instead of
    /// half-applied.
    pub fn commit<R, E>(&self, f: impl FnOnce(&mut Store) -> Result<R, E>) -> Result<R, E> {
        let mut txn = self.begin_write();
        let r = f(txn.store_mut())?;
        txn.commit();
        Ok(r)
    }
}

impl From<Store> for SnapshotStore {
    fn from(store: Store) -> Self {
        SnapshotStore::new(store)
    }
}

impl std::fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("SnapshotStore")
            .field("generation", &snap.generation())
            .field("triples", &snap.len())
            .finish()
    }
}

/// An in-flight write: a private working version of the store plus the
/// writer serialization guard. Mutations through [`WriteTxn::store_mut`]
/// stay invisible until [`WriteTxn::commit`]; dropping the transaction
/// without committing discards them.
pub struct WriteTxn<'a> {
    owner: &'a SnapshotStore,
    _guard: MutexGuard<'a, ()>,
    working: Arc<Store>,
}

impl WriteTxn<'_> {
    /// Mutable access to the private working copy. Copy-on-write: the
    /// first call pays the one deep clone (the published pointer still
    /// shares the base `Arc`); later calls in the same transaction mutate
    /// the now-unique copy in place.
    pub fn store_mut(&mut self) -> &mut Store {
        Arc::make_mut(&mut self.working)
    }

    /// Read access to the working copy (sees this transaction's own
    /// uncommitted mutations).
    pub fn store(&self) -> &Store {
        &self.working
    }

    /// Publish the working copy as the next generation: a single pointer
    /// swap under the publish lock. Readers that snapshotted earlier keep
    /// their generation; new snapshots see this one.
    pub fn commit(self) {
        *self.owner.current.write().unwrap_or_else(|e| e.into_inner()) = self.working;
    }

    /// Publish, then run `f` *before releasing the writer serialization
    /// guard*. Used by the durable server path to make "WAL append +
    /// publish" atomic with respect to checkpoints (both happen under the
    /// journal lock held by the caller); plain callers never need it.
    pub fn commit_with<R>(self, f: impl FnOnce() -> R) -> R {
        *self.owner.current.write().unwrap_or_else(|e| e.into_inner()) = self.working;
        let r = f();
        drop(self._guard);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_model::{Term, Triple};

    fn triple(i: usize) -> Triple {
        Triple::new(
            Term::iri(format!("http://e/s{i}")),
            Term::iri("http://e/p"),
            Term::integer(i as i64),
        )
    }

    #[test]
    fn snapshot_is_immutable_under_writes() {
        let shared = SnapshotStore::new(Store::new());
        shared.with_write(|s| {
            s.insert(&triple(0));
        });
        let before = shared.snapshot();
        let gen_before = before.generation();
        shared.with_write(|s| {
            for i in 1..100 {
                s.insert(&triple(i));
            }
        });
        // the old snapshot still sees exactly one triple, at its generation
        assert_eq!(before.len(), 1);
        assert_eq!(before.generation(), gen_before);
        // a fresh snapshot sees the new state
        let after = shared.snapshot();
        assert_eq!(after.len(), 100);
        assert!(after.generation() > gen_before);
    }

    #[test]
    fn failed_commit_rolls_back_entirely() {
        let shared = SnapshotStore::new(Store::new());
        shared.with_write(|s| {
            s.insert(&triple(0));
        });
        let gen = shared.generation();
        let result: Result<(), &str> = shared.commit(|s| {
            s.insert(&triple(1));
            s.insert(&triple(2));
            Err("validation failed after partial application")
        });
        assert!(result.is_err());
        let snap = shared.snapshot();
        assert_eq!(snap.len(), 1, "partial mutations must not be visible");
        assert_eq!(snap.generation(), gen);
    }

    #[test]
    fn writer_panic_publishes_nothing_and_next_writer_proceeds() {
        let shared = SnapshotStore::new(Store::new());
        shared.with_write(|s| {
            s.insert(&triple(0));
        });
        let gen = shared.generation();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.with_write(|s| {
                s.insert(&triple(1));
                panic!("writer died mid-batch");
            });
        }));
        assert!(panicked.is_err());
        // readers continue on the old generation
        let snap = shared.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.generation(), gen);
        // the next writer is not poisoned
        shared.with_write(|s| {
            s.insert(&triple(2));
        });
        assert_eq!(shared.snapshot().len(), 2);
    }

    #[test]
    fn one_copy_per_transaction_not_per_mutation() {
        // the first store_mut() in a transaction copies (the published Arc
        // co-owns the base); every further mutation is in place on the
        // now-unique working copy — observable via pointer stability
        let shared = SnapshotStore::new(Store::new());
        let mut txn = shared.begin_write();
        let p_first = txn.store_mut() as *const Store;
        txn.store_mut().insert(&triple(0));
        txn.store_mut().insert(&triple(1));
        let p_later = txn.store_mut() as *const Store;
        assert_eq!(p_first, p_later, "mutations within one txn must not re-copy");
        txn.commit();
        // the published pointer is exactly the working copy — no copy at commit
        let published = Arc::as_ptr(&shared.snapshot().into_arc());
        assert_eq!(p_first, published as *const Store);
        // a snapshot held across the next write keeps its own version
        let held = shared.snapshot();
        shared.with_write(|s| {
            s.insert(&triple(2));
        });
        assert_eq!(held.len(), 2);
        assert_eq!(shared.snapshot().len(), 3);
    }

    #[test]
    fn rollback_on_drop() {
        let shared = SnapshotStore::new(Store::new());
        {
            let mut txn = shared.begin_write();
            txn.store_mut().insert(&triple(7));
            // dropped without commit
        }
        assert_eq!(shared.snapshot().len(), 0);
    }

    #[test]
    fn concurrent_readers_see_single_generations() {
        let shared = Arc::new(SnapshotStore::new(Store::new()));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let snap = shared.snapshot();
                        // invariant maintained by the writer: triple count
                        // is even at every published generation
                        assert_eq!(snap.len() % 2, 0, "torn read: odd triple count");
                    }
                });
            }
            for i in 0..200 {
                shared.with_write(|s| {
                    s.insert(&triple(2 * i));
                    s.insert(&triple(2 * i + 1));
                });
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(shared.snapshot().len(), 400);
    }
}
