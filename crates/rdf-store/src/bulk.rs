//! Parallel bulk ingest: chunked zero-copy parsing, two-phase sharded
//! interning with a deterministic merge, and sort-based index builds.
//!
//! The seed ingest path ([`Store::load_ntriples`]) parses a whole document
//! into owned [`Term`]s, then interns and inserts one triple at a time into
//! three `BTreeSet` permutations. This module replaces every phase of that
//! pipeline while producing a **byte-identical** store:
//!
//! 1. **Chunked parsing** — the document is split on newline-safe chunk
//!    boundaries ([`ntriples::split_chunks`]) and each chunk is lexed on a
//!    scoped worker thread with the zero-copy lexer
//!    ([`ntriples::lex_line`]), which yields borrowed lexemes: no per-term
//!    `String` is allocated until interning decides a term is new.
//! 2. **Two-phase sharded interning** — each worker interns its chunk's
//!    terms into a local dictionary keyed by a 64-bit FNV hash. The merge
//!    phase dedups local dictionaries per hash shard (in parallel), then
//!    assigns global [`TermId`]s sequentially in *document first-occurrence
//!    order* — exactly the order the seed path interns in, and independent
//!    of the chunk count — so term ids never depend on the thread count.
//! 3. **Sort-based index build** — workers emit `IdTriple` runs which are
//!    sorted and deduplicated with parallel merge rounds; SPO/POS/OSP are
//!    then bulk-built from the sorted runs
//!    ([`TripleIndex::from_sorted_runs`]) instead of per-triple inserts.
//!
//! The seed per-triple path is retained untouched as the reference
//! implementation; `tests/ingest_differential.rs` proves both paths produce
//! identical stores (term ids, generation counter, all three indexes)
//! across thread counts.

use crate::index::{IdTriple, TripleIndex};
use crate::interner::{hash64, term_ref_of, Interner, Slot, TermId, U64Map};
use crate::store::Store;
use rdfa_model::ntriples::{self, NtriplesError, TermRef};
use rdfa_model::{turtle, Graph, Triple};
use std::collections::hash_map::Entry;
use std::fmt;
use std::io::Read;
use std::path::Path;

/// Tuning knobs for the bulk-ingest pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadOptions {
    /// Worker threads for parsing, interning and index builds. `0` (the
    /// default) uses the machine's available parallelism. Both `0` and
    /// explicit values are scaled down when the input is too small for the
    /// requested fan-out to pay for itself (see [`LoadOptions::exact`] to
    /// override) — the store contents never depend on the thread count,
    /// only the wall-clock does.
    pub threads: usize,
    /// Honour `threads` exactly, bypassing the small-input and
    /// available-parallelism caps. For tests that must force many chunks
    /// onto tiny documents; production callers should leave this off —
    /// BENCH_5 measured 8 requested threads *slower* than 1 at 509k
    /// triples once the box had fewer cores than the request.
    pub exact: bool,
}

impl LoadOptions {
    /// Options requesting a worker-thread count, still subject to the
    /// small-input and available-parallelism caps.
    pub fn with_threads(threads: usize) -> Self {
        LoadOptions { threads, exact: false }
    }

    /// Options pinning an exact worker-thread count, caps bypassed.
    pub fn exact(threads: usize) -> Self {
        LoadOptions { threads, exact: true }
    }
}

/// What a bulk load did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadStats {
    /// Triples parsed from the input, duplicates included (the count the
    /// seed loaders return).
    pub triples: usize,
    /// Distinct triples newly added to the store.
    pub added: usize,
    /// Terms newly interned.
    pub terms_added: usize,
    /// Worker threads actually used (after the small-input and
    /// available-parallelism caps).
    pub threads: usize,
    /// Worker threads requested via [`LoadOptions::threads`] (`0` = auto).
    pub requested: usize,
}

/// Why a streaming load failed.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be opened or read (includes invalid UTF-8).
    Io(std::io::Error),
    /// The N-Triples payload was malformed.
    Ntriples(NtriplesError),
    /// The Turtle payload was malformed.
    Turtle(turtle::TurtleError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "load failed: {e}"),
            LoadError::Ntriples(e) => write!(f, "load failed: {e}"),
            LoadError::Turtle(e) => write!(f, "load failed: {e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Ntriples(e) => Some(e),
            LoadError::Turtle(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<NtriplesError> for LoadError {
    fn from(e: NtriplesError) -> Self {
        LoadError::Ntriples(e)
    }
}

impl From<turtle::TurtleError> for LoadError {
    fn from(e: turtle::TurtleError) -> Self {
        LoadError::Turtle(e)
    }
}

// ---- phase 1: chunked parse into worker-local dictionaries ---------------

/// A worker-local dictionary: borrowed term views in first-occurrence
/// order, their hashes, and a hash → local-id bucket map. Nothing here owns
/// term text — entries borrow the input until the merge phase decides which
/// occurrences are canonical and converts exactly those to owned [`Term`]s.
#[derive(Default)]
struct LocalDict<'a> {
    terms: Vec<TermRef<'a>>,
    hashes: Vec<u64>,
    buckets: U64Map<Slot>,
}

impl<'a> LocalDict<'a> {
    /// A dictionary pre-sized for roughly `terms` distinct entries, so the
    /// hot intern loop rarely pays a table growth.
    fn with_capacity(terms: usize) -> Self {
        LocalDict {
            terms: Vec::with_capacity(terms),
            hashes: Vec::with_capacity(terms),
            buckets: U64Map::with_capacity_and_hasher(terms, Default::default()),
        }
    }

    fn len(&self) -> usize {
        self.terms.len()
    }

    fn intern(&mut self, t: TermRef<'a>) -> u32 {
        let h = hash64(&t);
        match self.buckets.entry(h) {
            Entry::Occupied(mut e) => match e.get_mut() {
                Slot::One(first) => {
                    let first = *first;
                    if t == self.terms[first as usize] {
                        return first;
                    }
                    let id = self.terms.len() as u32;
                    self.terms.push(t);
                    self.hashes.push(h);
                    *e.get_mut() = Slot::Many(vec![first, id]);
                    id
                }
                Slot::Many(ids) => {
                    for &i in ids.iter() {
                        if t == self.terms[i as usize] {
                            return i;
                        }
                    }
                    let id = self.terms.len() as u32;
                    self.terms.push(t);
                    self.hashes.push(h);
                    ids.push(id);
                    id
                }
            },
            Entry::Vacant(e) => {
                let id = self.terms.len() as u32;
                self.terms.push(t);
                self.hashes.push(h);
                e.insert(Slot::One(id));
                id
            }
        }
    }
}

/// One chunk's parse output: its dictionary and its triples over local ids.
struct ChunkPart<'a> {
    dict: LocalDict<'a>,
    triples: Vec<[u32; 3]>,
}

/// A fully parsed batch, ready to merge into a store. Borrows the input
/// text (zero-copy), but is structurally complete — callers can validate a
/// payload before committing side effects (the WAL logs between parse and
/// apply).
pub(crate) struct Batch<'a> {
    parts: Vec<ChunkPart<'a>>,
    lines: usize,
    triples: usize,
}

const MIN_BYTES_PER_CHUNK: usize = 64 * 1024;
const MIN_TRIPLES_PER_CHUNK: usize = 4096;

/// Resolve a requested thread count: `0` means auto (available
/// parallelism); explicit values are honoured up to the same two caps —
/// available parallelism (BENCH_5: 8 threads on a smaller box ran *slower*
/// than 1 at 509k triples, pure oversubscription overhead) and one thread
/// per `min_per_chunk` of work (chunks below that floor cost more in
/// spawn/merge than their parse saves). [`LoadOptions::exact`] bypasses
/// both, so differential tests can still force many chunks onto tiny
/// documents.
fn effective_threads(opts: LoadOptions, work_units: usize, min_per_chunk: usize) -> usize {
    if opts.exact && opts.threads > 0 {
        return opts.threads;
    }
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let work_cap = (work_units / min_per_chunk).max(1);
    let requested = if opts.threads == 0 { avail } else { opts.threads };
    requested.min(avail).min(work_cap)
}

/// Map `f` over `items` on scoped worker threads (sequentially when
/// `threads <= 1`), preserving item order.
fn scoped_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .into_iter()
            .enumerate()
            .map(|(i, t)| scope.spawn(move || f(i, t)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("ingest worker panicked")).collect()
    })
}

/// Parse an N-Triples document into a [`Batch`] with the requested worker
/// threads. Errors carry the 1-based line number *within this text*; the
/// first malformed line in document order wins, matching the sequential
/// parser.
pub(crate) fn parse_batch(text: &str, opts: LoadOptions) -> Result<Batch<'_>, NtriplesError> {
    let text = ntriples::strip_bom(text);
    let threads = effective_threads(opts, text.len(), MIN_BYTES_PER_CHUNK);
    let chunks = ntriples::split_chunks(text, threads);
    let results = scoped_map(chunks, threads, |_, chunk| parse_chunk(chunk));
    let mut parts = Vec::with_capacity(results.len());
    let mut lines = 0usize;
    let mut triples = 0usize;
    for result in results {
        match result {
            Ok((part, chunk_lines)) => {
                lines += chunk_lines;
                triples += part.triples.len();
                parts.push(part);
            }
            Err((e, local_line)) => return Err(e.at_line(lines + local_line)),
        }
    }
    Ok(Batch { parts, lines, triples })
}

/// Lex and locally intern one chunk. On success returns the part and the
/// chunk's line count (needed to offset later chunks' error lines).
#[allow(clippy::type_complexity)]
fn parse_chunk<'a>(
    chunk: &'a str,
) -> Result<(ChunkPart<'a>, usize), (ntriples::LexError, usize)> {
    // N-Triples lines run ~100+ bytes and real graphs re-use most terms;
    // these estimates only size the initial tables, correctness never
    // depends on them
    let mut dict = LocalDict::with_capacity(chunk.len() / 256);
    let mut triples = Vec::with_capacity(chunk.len() / 96);
    let mut n_lines = 0usize;
    // real-world dumps group consecutive lines by subject, so remembering
    // the previous subject's local id skips a hash+probe for the common
    // repeat (subject views are borrowed slices — the clone is a pointer
    // copy); predicates come from a small schema vocabulary that recurs in
    // every subject's line group, so a short ring of recent predicates
    // short-circuits most predicate interns the same way
    let mut last_subject: Option<(TermRef<'a>, u32)> = None;
    let mut recent_preds: Vec<(TermRef<'a>, u32)> = Vec::with_capacity(PRED_MEMO);
    for line in chunk.lines() {
        n_lines += 1;
        match ntriples::lex_line(line) {
            Ok(None) => {}
            Ok(Some([s, p, o])) => {
                let s_id = match &last_subject {
                    Some((prev, id)) if *prev == s => *id,
                    _ => {
                        let id = dict.intern(s.clone());
                        last_subject = Some((s, id));
                        id
                    }
                };
                let p_id = match recent_preds.iter().find(|(t, _)| *t == p) {
                    Some(&(_, id)) => id,
                    None => {
                        let id = dict.intern(p.clone());
                        if recent_preds.len() == PRED_MEMO {
                            recent_preds.remove(0);
                        }
                        recent_preds.push((p, id));
                        id
                    }
                };
                let o = dict.intern(o);
                triples.push([s_id, p_id, o]);
            }
            Err(e) => return Err((e, n_lines)),
        }
    }
    Ok((ChunkPart { dict, triples }, n_lines))
}

/// Recent-predicate ring size: big enough to hold a uniform schema's
/// per-subject predicate set, small enough that a miss costs a few string
/// length checks.
const PRED_MEMO: usize = 16;

/// Locally intern an already-parsed graph (the Turtle and datagen path):
/// the parse happened sequentially, but interning, deduplication and the
/// index build still fan out.
pub(crate) fn graph_batch(graph: &Graph, opts: LoadOptions) -> Batch<'_> {
    let triples: Vec<&Triple> = graph.iter().collect();
    let threads = effective_threads(opts, triples.len(), MIN_TRIPLES_PER_CHUNK);
    let chunk_size = triples.len().div_ceil(threads.max(1)).max(1);
    let chunks: Vec<&[&Triple]> = triples.chunks(chunk_size).collect();
    let parts = scoped_map(chunks, threads, |_, chunk| {
        let mut dict = LocalDict::with_capacity(chunk.len());
        let mut out = Vec::with_capacity(chunk.len());
        for t in chunk {
            let s = dict.intern(term_ref_of(&t.subject));
            let p = dict.intern(term_ref_of(&t.predicate));
            let o = dict.intern(term_ref_of(&t.object));
            out.push([s, p, o]);
        }
        ChunkPart { dict, triples: out }
    });
    Batch { parts, lines: 0, triples: graph.len() }
}

// ---- phase 2: sharded dedup merge + deterministic id assignment ----------
//
// Both strategies below translate a batch's worker-local dictionaries into
// per-chunk `local id → global TermId` tables assigning ids in *document
// first-occurrence order* — the canonical order, identical to the seed
// path and independent of the chunk count. `assign_direct` walks chunks
// sequentially (chunks partition the document in order and local ids are
// chunk-first-occurrence-ordered, so chunk-major/local-minor *is* document
// order). `assign_sharded` first dedups across chunks per hash shard in
// parallel so the sequential id-assignment section only touches each
// distinct term once — worth it exactly when spare cores exist; a unit
// test pins both to the same output.

const SHARDS: usize = 16;

/// One hash shard's cross-chunk dedup result.
struct ShardOut {
    /// `(chunk, local)` of each distinct term's first occurrence, ascending.
    entries: Vec<(u32, u32)>,
    /// Every `(chunk, local, entry)` membership in this shard.
    assign: Vec<(u32, u32, u32)>,
}

fn merge_shard<'a>(parts: &[ChunkPart<'a>], shard: usize) -> ShardOut {
    let mut buckets: U64Map<Slot> = U64Map::default();
    let mut entries: Vec<(u32, u32)> = Vec::new();
    let mut assign: Vec<(u32, u32, u32)> = Vec::new();
    let term_of = |entries: &[(u32, u32)], e: u32| -> &TermRef<'a> {
        let (c, l) = entries[e as usize];
        &parts[c as usize].dict.terms[l as usize]
    };
    for (ci, part) in parts.iter().enumerate() {
        for (li, &h) in part.dict.hashes.iter().enumerate() {
            if h as usize % SHARDS != shard {
                continue;
            }
            let term = &part.dict.terms[li];
            let entry = match buckets.entry(h) {
                Entry::Occupied(mut e) => match e.get_mut() {
                    Slot::One(first) => {
                        let first = *first;
                        if term == term_of(&entries, first) {
                            first
                        } else {
                            let id = entries.len() as u32;
                            entries.push((ci as u32, li as u32));
                            *e.get_mut() = Slot::Many(vec![first, id]);
                            id
                        }
                    }
                    Slot::Many(ids) => {
                        match ids.iter().find(|&&i| term == term_of(&entries, i)) {
                            Some(&i) => i,
                            None => {
                                let id = entries.len() as u32;
                                entries.push((ci as u32, li as u32));
                                ids.push(id);
                                id
                            }
                        }
                    }
                },
                Entry::Vacant(e) => {
                    let id = entries.len() as u32;
                    entries.push((ci as u32, li as u32));
                    e.insert(Slot::One(id));
                    id
                }
            };
            assign.push((ci as u32, li as u32, entry));
        }
    }
    ShardOut { entries, assign }
}

/// Sequential chunk-major assignment: probe the global interner once per
/// local entry. The cheapest strategy when no parallelism is available.
fn assign_direct(parts: &[ChunkPart<'_>], interner: &mut Interner) -> Vec<Vec<TermId>> {
    parts
        .iter()
        .map(|part| {
            part.dict
                .terms
                .iter()
                .zip(&part.dict.hashes)
                .map(|(t, &h)| interner.get_or_intern_owned_hashed(h, t.to_term()))
                .collect()
        })
        .collect()
}

/// Shard-parallel cross-chunk dedup, then sequential global id assignment
/// over the distinct representatives only, then a scatter back to per-chunk
/// tables. Identical output to [`assign_direct`].
fn assign_sharded(
    parts: &[ChunkPart<'_>],
    interner: &mut Interner,
    threads: usize,
) -> Vec<Vec<TermId>> {
    // 2a: per-shard cross-chunk dedup, shards strided over workers
    let groups = threads.clamp(1, SHARDS);
    let shard_outs: Vec<ShardOut> = {
        let nested: Vec<Vec<(usize, ShardOut)>> =
            scoped_map((0..groups).collect(), groups, |_, g| {
                (g..SHARDS).step_by(groups).map(|s| (s, merge_shard(parts, s))).collect()
            });
        let mut outs: Vec<Option<ShardOut>> = (0..SHARDS).map(|_| None).collect();
        for (s, so) in nested.into_iter().flatten() {
            outs[s] = Some(so);
        }
        outs.into_iter().map(|o| o.expect("every shard merged")).collect()
    };

    // 2b: global ids in document first-occurrence order
    let mut order: Vec<(u32, u32, u32, u32)> = Vec::new(); // (chunk, local, shard, entry)
    for (s, so) in shard_outs.iter().enumerate() {
        for (e, &(c, l)) in so.entries.iter().enumerate() {
            order.push((c, l, s as u32, e as u32));
        }
    }
    order.sort_unstable();
    let mut shard_global: Vec<Vec<TermId>> =
        shard_outs.iter().map(|so| vec![TermId(0); so.entries.len()]).collect();
    for &(c, l, s, e) in &order {
        // the representative's first (and only) conversion to an owned
        // Term — occurrences that lost the dedup race are never allocated
        let dict = &parts[c as usize].dict;
        let (term, h) = (dict.terms[l as usize].to_term(), dict.hashes[l as usize]);
        shard_global[s as usize][e as usize] = interner.get_or_intern_owned_hashed(h, term);
    }

    // 2c: scatter shard entries back to per-chunk local → global tables
    let mut tables: Vec<Vec<TermId>> =
        parts.iter().map(|p| vec![TermId(0); p.dict.len()]).collect();
    for (s, so) in shard_outs.iter().enumerate() {
        for &(c, l, e) in &so.assign {
            tables[c as usize][l as usize] = shard_global[s][e as usize];
        }
    }
    tables
}

// ---- phase 3: sort-based triple dedup and index build --------------------

/// Merge two sorted, distinct runs into one sorted, distinct run.
fn merge_dedup(a: Vec<IdTriple>, b: Vec<IdTriple>) -> Vec<IdTriple> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sort + dedup each run in parallel, then reduce them with parallel
/// pairwise merge rounds into one sorted, distinct run.
fn par_sort_dedup(runs: Vec<Vec<IdTriple>>, threads: usize) -> Vec<IdTriple> {
    let mut runs: Vec<Vec<IdTriple>> = scoped_map(runs, threads, |_, mut r| {
        r.sort_unstable();
        r.dedup();
        r
    });
    runs.retain(|r| !r.is_empty());
    while runs.len() > 1 {
        let mut pairs = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        runs = scoped_map(pairs, threads, |_, (a, b)| match b {
            Some(b) => merge_dedup(a, b),
            None => a,
        });
    }
    runs.pop().unwrap_or_default()
}

/// Build a sorted permutation of an already-sorted distinct SPO run by
/// rewriting each element and re-sorting in parallel runs.
fn permuted_sorted(
    spo: &[IdTriple],
    perm: fn(IdTriple) -> IdTriple,
    threads: usize,
) -> Vec<IdTriple> {
    let chunk = spo.len().div_ceil(threads.max(1)).max(1);
    let runs: Vec<Vec<IdTriple>> = spo
        .chunks(chunk)
        .map(|c| c.iter().map(|&t| perm(t)).collect())
        .collect();
    par_sort_dedup(runs, threads)
}

/// Merge a sorted distinct run of new triples into the explicit index,
/// rebuilding all three permutations in bulk. Returns how many triples were
/// actually new.
fn extend_index(explicit: &mut TripleIndex, new_run: Vec<IdTriple>, threads: usize) -> usize {
    if new_run.is_empty() {
        return 0;
    }
    let old_len = explicit.len();
    let combined = if old_len == 0 {
        new_run
    } else {
        merge_dedup(explicit.iter().collect(), new_run)
    };
    let added = combined.len() - old_len;
    if added == 0 {
        return 0;
    }
    let pos = permuted_sorted(&combined, |[s, p, o]| [p, o, s], threads);
    let osp = permuted_sorted(&combined, |[s, p, o]| [o, s, p], threads);
    *explicit = TripleIndex::from_sorted_runs(combined, pos, osp);
    added
}

// ---- the loader ----------------------------------------------------------

/// Accumulates parsed batches into a store and builds the indexes once at
/// the end — the engine behind [`Store::bulk_load_ntriples`] and the
/// streaming/persistent loaders, which need to interleave WAL appends or
/// block reads between batches.
pub(crate) struct BulkLoader<'s> {
    store: &'s mut Store,
    opts: LoadOptions,
    threads_used: usize,
    runs: Vec<Vec<IdTriple>>,
    line_base: usize,
    triples_seen: usize,
    terms_before: usize,
}

impl<'s> BulkLoader<'s> {
    pub(crate) fn new(store: &'s mut Store, opts: LoadOptions) -> Self {
        let terms_before = store.term_count();
        BulkLoader {
            store,
            opts,
            threads_used: 1,
            runs: Vec::new(),
            line_base: 0,
            triples_seen: 0,
            terms_before,
        }
    }

    /// Parse a text block. Error line numbers are absolute across all
    /// blocks ingested through this loader so far.
    pub(crate) fn parse<'t>(&self, text: &'t str) -> Result<Batch<'t>, NtriplesError> {
        parse_batch(text, self.opts).map_err(|mut e| {
            e.line += self.line_base;
            e
        })
    }

    /// Merge a parsed batch into the store's interner and stage its triple
    /// runs: cross-chunk dedup + global id assignment in document
    /// first-occurrence order (the canonical order — identical to the seed
    /// path and independent of chunking), then chunk-parallel remap of
    /// local ids to global ones. The sharded merge only pays off when the
    /// machine can actually run shards concurrently; otherwise the direct
    /// sequential assignment (same output, proven by unit test) is used.
    pub(crate) fn apply(&mut self, batch: Batch<'_>) {
        let Batch { parts, lines, triples } = batch;
        self.line_base += lines;
        self.triples_seen += triples;
        let local_terms: usize = parts.iter().map(|p| p.dict.len()).sum();
        let threads = effective_threads(self.opts, local_terms, MIN_TRIPLES_PER_CHUNK);
        self.threads_used = self.threads_used.max(threads).max(parts.len());

        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let tables: Vec<Vec<TermId>> = if parts.len() == 1 || cores == 1 {
            assign_direct(&parts, &mut self.store.interner)
        } else {
            assign_sharded(&parts, &mut self.store.interner, threads)
        };

        let work: Vec<(ChunkPart<'_>, Vec<TermId>)> = parts.into_iter().zip(tables).collect();
        let new_runs: Vec<Vec<IdTriple>> = scoped_map(work, threads, |_, (part, table)| {
            part.triples
                .iter()
                .map(|&[s, p, o]| [table[s as usize], table[p as usize], table[o as usize]])
                .collect()
        });
        self.runs.extend(new_runs);
    }

    /// Parse and stage one text block.
    pub(crate) fn ingest_text(&mut self, text: &str) -> Result<(), NtriplesError> {
        let batch = self.parse(text)?;
        self.apply(batch);
        Ok(())
    }

    /// Sort + dedup the staged runs, bulk-(re)build the explicit indexes,
    /// and account generation/dirtiness exactly like the per-triple path:
    /// one bump per genuinely new triple, plus the materialization bump
    /// when `materialize` is set (the load paths always materialize; WAL
    /// replay defers it to the end of recovery).
    pub(crate) fn finish(self, materialize: bool) -> LoadStats {
        let threads = effective_threads(
            self.opts,
            self.runs.iter().map(Vec::len).sum(),
            MIN_TRIPLES_PER_CHUNK,
        );
        let new_run = par_sort_dedup(self.runs, threads);
        let added = extend_index(&mut self.store.explicit, new_run, threads);
        if added > 0 {
            self.store.dirty = true;
            self.store.generation += added as u64;
        }
        if materialize {
            self.store.materialize_inference();
        }
        LoadStats {
            triples: self.triples_seen,
            added,
            terms_added: self.store.term_count() - self.terms_before,
            threads: self.threads_used,
            requested: self.opts.threads,
        }
    }
}

// ---- streaming block reader ----------------------------------------------

const STREAM_BLOCK: usize = 4 << 20;

/// Reads a byte stream in ~4 MiB blocks cut at newline boundaries, so each
/// block is a whole number of N-Triples lines (and therefore valid UTF-8
/// whenever the input is). The file is never materialized in one piece.
pub(crate) struct BlockReader<R> {
    reader: R,
    carry: Vec<u8>,
    eof: bool,
    block_size: usize,
}

impl<R: Read> BlockReader<R> {
    pub(crate) fn new(reader: R) -> Self {
        Self::with_block_size(reader, STREAM_BLOCK)
    }

    pub(crate) fn with_block_size(reader: R, block_size: usize) -> Self {
        BlockReader { reader, carry: Vec::new(), eof: false, block_size: block_size.max(1) }
    }

    /// The next block, or `None` at end of input. Only the final block may
    /// lack a trailing newline.
    pub(crate) fn next_block(&mut self) -> std::io::Result<Option<String>> {
        if self.eof && self.carry.is_empty() {
            return Ok(None);
        }
        let mut buf = std::mem::take(&mut self.carry);
        let mut tmp = [0u8; 64 * 1024];
        while !self.eof && buf.len() < self.block_size {
            let n = self.reader.read(&mut tmp)?;
            if n == 0 {
                self.eof = true;
            } else {
                buf.extend_from_slice(&tmp[..n]);
            }
        }
        if !self.eof {
            // cut at the last newline; a single line longer than the block
            // size keeps growing until its terminator (or EOF) arrives
            loop {
                if let Some(i) = buf.iter().rposition(|&b| b == b'\n') {
                    self.carry = buf.split_off(i + 1);
                    break;
                }
                let n = self.reader.read(&mut tmp)?;
                if n == 0 {
                    self.eof = true;
                    break;
                }
                buf.extend_from_slice(&tmp[..n]);
            }
        }
        if buf.is_empty() {
            return Ok(None);
        }
        String::from_utf8(buf)
            .map(Some)
            .map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("input is not valid UTF-8: {e}"),
                )
            })
    }
}

// ---- public Store entry points -------------------------------------------

impl Store {
    /// Bulk-load an N-Triples document: chunked zero-copy parallel parse,
    /// sharded interning, sort-based index build. Produces a store
    /// **identical** to [`Store::load_ntriples`] — same term ids, same
    /// generation counter, same indexes — for any thread count, and
    /// materializes inference like the seed path. On error the store is
    /// untouched.
    pub fn bulk_load_ntriples(
        &mut self,
        text: &str,
        opts: LoadOptions,
    ) -> Result<LoadStats, NtriplesError> {
        let mut loader = BulkLoader::new(self, opts);
        loader.ingest_text(text)?;
        Ok(loader.finish(true))
    }

    /// Bulk-load an already-parsed graph through the sharded-interning and
    /// sort-based-build phases (the datagen and Turtle path). Identical
    /// result to [`Store::load_graph`].
    pub fn bulk_load_graph(&mut self, graph: &Graph, opts: LoadOptions) -> LoadStats {
        let mut loader = BulkLoader::new(self, opts);
        let batch = graph_batch(graph, opts);
        loader.apply(batch);
        loader.finish(true)
    }

    /// Stream N-Triples from a reader in newline-aligned blocks, bulk-
    /// ingesting each block: the document is never held in memory at once.
    pub fn load_ntriples_reader(
        &mut self,
        reader: impl Read,
        opts: LoadOptions,
    ) -> Result<LoadStats, LoadError> {
        let mut blocks = BlockReader::new(reader);
        let mut loader = BulkLoader::new(self, opts);
        while let Some(block) = blocks.next_block()? {
            loader.ingest_text(&block)?;
        }
        Ok(loader.finish(true))
    }

    /// Stream-load an N-Triples file ([`Store::load_ntriples_reader`] over
    /// a [`std::fs::File`]).
    pub fn load_ntriples_path(
        &mut self,
        path: impl AsRef<Path>,
        opts: LoadOptions,
    ) -> Result<LoadStats, LoadError> {
        let file = std::fs::File::open(path)?;
        self.load_ntriples_reader(file, opts)
    }

    /// Load a Turtle file. Turtle is stateful (prefix declarations scope
    /// the whole document), so the parse itself stays sequential — but
    /// interning and the index build still run through the bulk pipeline.
    pub fn load_turtle_path(
        &mut self,
        path: impl AsRef<Path>,
        opts: LoadOptions,
    ) -> Result<LoadStats, LoadError> {
        let text = std::fs::read_to_string(path)?;
        let graph = turtle::parse(&text)?;
        Ok(self.bulk_load_graph(&graph, opts))
    }

    /// WAL-replay entry point: bulk-ingest an `OP_LOAD` payload *without*
    /// materializing inference — recovery replays many records and
    /// materializes once at the end, and per-insert generation accounting
    /// must match the sequential replay exactly.
    pub(crate) fn bulk_replay_ntriples(&mut self, text: &str) -> Result<usize, NtriplesError> {
        let mut loader = BulkLoader::new(self, LoadOptions::default());
        loader.ingest_text(text)?;
        Ok(loader.finish(false).added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_model::Term;
    use rdfa_prng::StdRng;

    fn t(s: u32, p: u32, o: u32) -> IdTriple {
        [TermId(s), TermId(p), TermId(o)]
    }

    #[test]
    fn effective_threads_caps_small_inputs_and_oversubscription() {
        let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // tiny input: even an explicit request collapses to 1
        assert_eq!(effective_threads(LoadOptions::with_threads(8), 100, 64 * 1024), 1);
        // explicit requests never exceed available parallelism
        assert!(effective_threads(LoadOptions::with_threads(64), usize::MAX, 1) <= avail);
        // auto follows the same caps
        assert_eq!(effective_threads(LoadOptions::default(), 100, 64 * 1024), 1);
        assert!(effective_threads(LoadOptions::default(), usize::MAX, 1) <= avail);
        // big-enough input: request honoured up to availability
        assert_eq!(
            effective_threads(LoadOptions::with_threads(2), 10 * 64 * 1024, 64 * 1024),
            2.min(avail)
        );
        // the exact knob bypasses both caps
        assert_eq!(effective_threads(LoadOptions::exact(8), 100, 64 * 1024), 8);
    }

    #[test]
    fn load_stats_record_requested_and_used_parallelism() {
        let mut text = String::new();
        for i in 0..100 {
            text.push_str(&format!("<http://s{i}> <http://p> \"{i}\" .\n"));
        }
        let mut s = Store::new();
        let stats = s.bulk_load_ntriples(&text, LoadOptions::with_threads(8)).unwrap();
        assert_eq!(stats.requested, 8);
        assert_eq!(stats.threads, 1, "tiny input must not fan out");
        let mut s2 = Store::new();
        let stats2 = s2.bulk_load_ntriples(&text, LoadOptions::exact(4)).unwrap();
        assert_eq!(stats2.requested, 4);
        assert_eq!(stats2.threads, 4, "exact bypasses the caps");
        assert_eq!(s.len(), s2.len());
    }

    #[test]
    fn merge_dedup_unions_sorted_runs() {
        let a = vec![t(1, 1, 1), t(2, 2, 2), t(5, 5, 5)];
        let b = vec![t(2, 2, 2), t(3, 3, 3)];
        let m = merge_dedup(a, b);
        assert_eq!(m, vec![t(1, 1, 1), t(2, 2, 2), t(3, 3, 3), t(5, 5, 5)]);
    }

    #[test]
    fn par_sort_dedup_matches_naive_sort() {
        for case in 0u64..32 {
            let mut rng = StdRng::seed_from_u64(case);
            let runs: Vec<Vec<IdTriple>> = (0..rng.gen_range(0..6))
                .map(|_| {
                    (0..rng.gen_range(0..50))
                        .map(|_| {
                            t(
                                rng.gen_range(0u32..8),
                                rng.gen_range(0u32..8),
                                rng.gen_range(0u32..8),
                            )
                        })
                        .collect()
                })
                .collect();
            let mut naive: Vec<IdTriple> = runs.iter().flatten().copied().collect();
            naive.sort_unstable();
            naive.dedup();
            for threads in [1, 3, 8] {
                assert_eq!(par_sort_dedup(runs.clone(), threads), naive, "case {case}");
            }
        }
    }

    #[test]
    fn local_dict_dedups_and_survives_hash_collisions() {
        let mut dict = LocalDict::default();
        let a = dict.intern(TermRef::Iri("http://a"));
        let b = dict.intern(TermRef::Iri("http://b"));
        assert_eq!(a, dict.intern(TermRef::Iri("http://a")));
        assert_ne!(a, b);
        // force a collision: same slot, different terms
        let h = hash64(&TermRef::Iri("http://a"));
        dict.buckets.insert(h, Slot::Many(vec![a, b]));
        assert_eq!(b, dict.intern(TermRef::Iri("http://b")));
        let c = dict.intern(TermRef::Iri("http://c"));
        assert_ne!(b, c);
    }

    #[test]
    fn direct_and_sharded_assignment_agree() {
        // a document with heavy cross-chunk term sharing: repeated
        // predicates, repeated objects, subjects recurring in every chunk
        let mut text = String::new();
        for i in 0..200 {
            let s = i % 23;
            let p = i % 5;
            text.push_str(&format!("<http://s{s}> <http://p{p}> \"v{}\" .\n", i % 31));
            text.push_str(&format!("<http://s{s}> <http://p{p}> <http://s{}> .\n", (i + 7) % 23));
        }
        for threads in [2usize, 4, 8] {
            let batch_a = parse_batch(&text, LoadOptions::exact(threads)).unwrap();
            let batch_b = parse_batch(&text, LoadOptions::exact(threads)).unwrap();
            assert!(batch_a.parts.len() > 1, "chunking must engage");
            // pre-seed both interners identically: the non-empty-store case
            let mut int_a = Interner::new();
            let mut int_b = Interner::new();
            for t in [Term::iri("http://p1"), Term::string("v3")] {
                int_a.get_or_intern(&t);
                int_b.get_or_intern(&t);
            }
            let tables_a = assign_direct(&batch_a.parts, &mut int_a);
            let tables_b = assign_sharded(&batch_b.parts, &mut int_b, threads);
            assert_eq!(tables_a, tables_b, "{threads} threads");
            assert_eq!(int_a.len(), int_b.len());
            for i in 0..int_a.len() {
                let id = TermId(i as u32);
                assert_eq!(int_a.term(id), int_b.term(id), "term {i}");
            }
        }
    }

    #[test]
    fn hashes_agree_between_lexed_and_owned_views() {
        let lines = [
            r#"<http://s> <http://p> "v" ."#,
            r#"_:b <http://p> "bonjour"@fr ."#,
            r#"<http://s> <http://p> "4"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
            r#"<http://s> <http://p> "a\nb" ."#,
        ];
        for line in lines {
            let refs = ntriples::lex_line(line).unwrap().unwrap();
            for r in &refs {
                // the graph path hashes a view of the owned Term; both views
                // of the same term must land in the same shard bucket
                let owned = r.to_term();
                assert_eq!(hash64(r), hash64(&term_ref_of(&owned)), "{line}");
                assert!(*r == owned);
            }
        }
        // distinct term kinds with equal payload must not collide by design
        assert_ne!(hash64(&TermRef::Iri("x")), hash64(&TermRef::Blank("x")));
        assert_ne!(
            hash64(&TermRef::Iri("x")),
            hash64(&term_ref_of(&Term::string("x")))
        );
    }

    #[test]
    fn block_reader_cuts_at_newlines() {
        let text = "line one\nline two\nline three no newline";
        let mut r = BlockReader::with_block_size(text.as_bytes(), 10);
        let mut blocks = Vec::new();
        while let Some(b) = r.next_block().unwrap() {
            blocks.push(b);
        }
        assert!(blocks.len() >= 2, "{blocks:?}");
        assert_eq!(blocks.concat(), text);
        for b in &blocks[..blocks.len() - 1] {
            assert!(b.ends_with('\n'), "mid block must end on a newline: {b:?}");
        }
        // a block holding a line longer than the block size still arrives whole
        let long = format!("{}\nshort\n", "x".repeat(64));
        let mut r = BlockReader::with_block_size(long.as_bytes(), 8);
        let first = r.next_block().unwrap().unwrap();
        assert!(first.ends_with('\n'));
        assert!(first.len() >= 65);
        let mut rest = String::new();
        while let Some(b) = r.next_block().unwrap() {
            rest.push_str(&b);
        }
        assert_eq!(format!("{first}{rest}"), long);
    }

    #[test]
    fn block_reader_rejects_invalid_utf8() {
        let bytes: &[u8] = b"<http://s> <http://p> \"\xff\" .\n";
        let mut r = BlockReader::new(bytes);
        let err = r.next_block().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}

