//! # rdfa-store — interned, indexed, in-memory RDF triple store
//!
//! The storage substrate for the RDF-Analytics system. Terms are interned
//! once into dense [`TermId`]s (a classic triple-store design; see the
//! performance guide's advice on integer keys and avoiding allocation in hot
//! paths), and triples are kept in three sorted permutations — SPO, POS, OSP —
//! so that every binding shape of a triple pattern is answered by a single
//! contiguous range scan.
//!
//! RDFS inference (`rdfs:subClassOf`, `rdfs:subPropertyOf`, `rdfs:domain`,
//! `rdfs:range`) is materialized into a separate *inferred* layer (§2.1,
//! §5.2.1 of the paper), so both raw and entailed views stay queryable.
//!
//! ```
//! use rdfa_model::Term;
//! use rdfa_store::Store;
//!
//! let mut store = Store::new();
//! let ttl = r#"
//!   @prefix ex: <http://example.org/> .
//!   @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
//!   ex:Laptop rdfs:subClassOf ex:Product .
//!   ex:laptop1 a ex:Laptop .
//! "#;
//! store.load_turtle(ttl).unwrap();
//! let product = store.lookup(&Term::iri("http://example.org/Product")).unwrap();
//! assert_eq!(store.instances(product).len(), 1); // via subClassOf inference
//! ```

pub mod bulk;
pub mod concurrent;
pub mod extset;
pub mod index;
pub mod inference;
pub mod interner;
pub mod keyword;
pub mod persist;
pub mod stats;
pub mod store;

pub use bulk::{LoadError, LoadOptions, LoadStats};
pub use concurrent::{Snapshot, SnapshotStore, WriteTxn};
pub use extset::ExtSet;
pub use index::{IdTriple, TripleIndex};
pub use interner::{Interner, TermId};
pub use keyword::KeywordIndex;
pub use persist::{
    CrashInjector, FsyncPolicy, Journal, Mutation, PersistConfig, PersistError,
    PersistentStore, RecoveryReport, WalTruncation, CRASH_POINTS,
};
pub use stats::StoreStats;
pub use store::{CountKey, Pattern, Store};
