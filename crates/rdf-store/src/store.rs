//! The [`Store`]: interner + explicit and inferred triple layers + schema
//! helper queries used by the faceted-search model.

use crate::extset::{merge_sorted, ExtSet};
use crate::index::{IdTriple, TripleIndex};
use crate::inference;
use crate::interner::{Interner, TermId};
use rdfa_model::{ntriples, turtle, vocab, Graph, Term, Triple};
use std::collections::{BTreeSet, HashMap};

/// A triple pattern over interned ids; `None` is a wildcard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Pattern {
    pub s: Option<TermId>,
    pub p: Option<TermId>,
    pub o: Option<TermId>,
}

impl Pattern {
    /// A fully wild pattern.
    pub fn any() -> Self {
        Pattern::default()
    }
}

/// Which side of a `p`-edge [`Store::edge_counts`] keys its counts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountKey {
    /// Count edges per subject.
    Subject,
    /// Count edges per object.
    Object,
}

/// A posting run at least this many times larger than the extension makes
/// per-element seeks cheaper than a full scan.
const SEEK_FACTOR: usize = 32;

/// Sort id occurrences and run-length encode them into `(id, count)` pairs,
/// ascending. Each occurrence is one distinct edge, so counts are exact.
fn sort_and_count(mut occurrences: Vec<TermId>) -> Vec<(TermId, usize)> {
    occurrences.sort_unstable();
    let mut out: Vec<(TermId, usize)> = Vec::new();
    for id in occurrences {
        match out.last_mut() {
            Some((last, n)) if *last == id => *n += 1,
            _ => out.push((id, 1)),
        }
    }
    out
}

/// Ids of the vocabulary terms the store interprets, interned eagerly so hot
/// paths never hash strings.
#[derive(Debug, Clone, Copy)]
pub struct WellKnown {
    pub rdf_type: TermId,
    pub rdfs_subclassof: TermId,
    pub rdfs_subpropertyof: TermId,
    pub rdfs_domain: TermId,
    pub rdfs_range: TermId,
    pub rdfs_class: TermId,
    pub rdf_property: TermId,
    pub owl_functional: TermId,
}

/// In-memory RDF store: explicit triples plus a materialized RDFS closure.
#[derive(Debug, Clone)]
pub struct Store {
    pub(crate) interner: Interner,
    pub(crate) explicit: TripleIndex,
    /// Inferred triples **not** present in the explicit layer.
    inferred: TripleIndex,
    /// True when the inferred layer is stale w.r.t. the explicit layer.
    pub(crate) dirty: bool,
    /// Monotonic change counter: bumped on every effective insert/remove and
    /// on rematerialization. Cache keys derived from query results over this
    /// store include the generation, so stale entries die automatically.
    pub(crate) generation: u64,
    wk: WellKnown,
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        let mut interner = Interner::new();
        let wk = WellKnown {
            rdf_type: interner.get_or_intern(&Term::iri(vocab::rdf::TYPE)),
            rdfs_subclassof: interner.get_or_intern(&Term::iri(vocab::rdfs::SUB_CLASS_OF)),
            rdfs_subpropertyof: interner.get_or_intern(&Term::iri(vocab::rdfs::SUB_PROPERTY_OF)),
            rdfs_domain: interner.get_or_intern(&Term::iri(vocab::rdfs::DOMAIN)),
            rdfs_range: interner.get_or_intern(&Term::iri(vocab::rdfs::RANGE)),
            rdfs_class: interner.get_or_intern(&Term::iri(vocab::rdfs::CLASS)),
            rdf_property: interner.get_or_intern(&Term::iri(vocab::rdf::PROPERTY)),
            owl_functional: interner.get_or_intern(&Term::iri(vocab::owl::FUNCTIONAL_PROPERTY)),
        };
        Store {
            interner,
            explicit: TripleIndex::new(),
            inferred: TripleIndex::new(),
            dirty: false,
            generation: 0,
            wk,
        }
    }

    /// Rebuild a store from a deserialized interner + explicit layer (the
    /// snapshot reader). Well-known ids are re-resolved by lookup rather
    /// than assumed, so the format stays robust to interning order. The
    /// returned store is dirty — the caller rematerializes inference after
    /// WAL replay.
    pub(crate) fn from_layers(mut interner: Interner, explicit: TripleIndex) -> Store {
        let wk = WellKnown {
            rdf_type: interner.get_or_intern(&Term::iri(vocab::rdf::TYPE)),
            rdfs_subclassof: interner.get_or_intern(&Term::iri(vocab::rdfs::SUB_CLASS_OF)),
            rdfs_subpropertyof: interner.get_or_intern(&Term::iri(vocab::rdfs::SUB_PROPERTY_OF)),
            rdfs_domain: interner.get_or_intern(&Term::iri(vocab::rdfs::DOMAIN)),
            rdfs_range: interner.get_or_intern(&Term::iri(vocab::rdfs::RANGE)),
            rdfs_class: interner.get_or_intern(&Term::iri(vocab::rdfs::CLASS)),
            rdf_property: interner.get_or_intern(&Term::iri(vocab::rdf::PROPERTY)),
            owl_functional: interner.get_or_intern(&Term::iri(vocab::owl::FUNCTIONAL_PROPERTY)),
        };
        Store { interner, explicit, inferred: TripleIndex::new(), dirty: true, generation: 0, wk }
    }

    /// Open a durable store rooted at `dir` with default persistence
    /// settings (fsync on every WAL append, crash injection off). See
    /// [`crate::persist::PersistentStore::open`] for full control.
    pub fn open(
        dir: impl AsRef<std::path::Path>,
    ) -> Result<crate::persist::PersistentStore, crate::persist::PersistError> {
        crate::persist::PersistentStore::open(dir, crate::persist::PersistConfig::default())
    }

    /// The interned ids of the interpreted vocabulary.
    pub fn well_known(&self) -> WellKnown {
        self.wk
    }

    // ---- term table ------------------------------------------------------

    /// Intern a term (creating an id if needed).
    pub fn intern(&mut self, term: &Term) -> TermId {
        self.interner.get_or_intern(term)
    }

    /// Intern an IRI string.
    pub fn intern_iri(&mut self, iri: &str) -> TermId {
        self.interner.get_or_intern(&Term::iri(iri))
    }

    /// Look up a term's id without interning.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.interner.lookup(term)
    }

    /// Look up an IRI's id without interning.
    pub fn lookup_iri(&self, iri: &str) -> Option<TermId> {
        self.interner.lookup(&Term::iri(iri))
    }

    /// Resolve an id back to its term.
    pub fn term(&self, id: TermId) -> &Term {
        self.interner.term(id)
    }

    /// Number of interned terms.
    pub fn term_count(&self) -> usize {
        self.interner.len()
    }

    /// Iterate every interned `(id, term)` pair.
    pub fn terms(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.interner.iter()
    }

    // ---- mutation --------------------------------------------------------

    /// Insert a triple of terms. Marks the inference layer stale.
    pub fn insert(&mut self, t: &Triple) -> bool {
        let s = self.interner.get_or_intern(&t.subject);
        let p = self.interner.get_or_intern(&t.predicate);
        let o = self.interner.get_or_intern(&t.object);
        self.insert_ids([s, p, o])
    }

    /// Insert a triple of already-interned ids.
    pub fn insert_ids(&mut self, t: IdTriple) -> bool {
        let added = self.explicit.insert(t);
        if added {
            self.dirty = true;
            self.generation += 1;
        }
        added
    }

    /// Remove an explicit triple (the closure is recomputed lazily).
    pub fn remove_ids(&mut self, t: IdTriple) -> bool {
        let removed = self.explicit.remove(t);
        if removed {
            self.dirty = true;
            self.generation += 1;
        }
        removed
    }

    /// Load a parsed graph and materialize the RDFS closure.
    pub fn load_graph(&mut self, graph: &Graph) {
        for t in graph.iter() {
            self.insert(t);
        }
        self.materialize_inference();
    }

    /// Parse and load a Turtle document.
    pub fn load_turtle(&mut self, text: &str) -> Result<usize, turtle::TurtleError> {
        let g = turtle::parse(text)?;
        let n = g.len();
        self.load_graph(&g);
        Ok(n)
    }

    /// Parse and load an N-Triples document. The error carries the line
    /// number and offending lexeme of the first failure.
    pub fn load_ntriples(&mut self, text: &str) -> Result<usize, ntriples::NtriplesError> {
        let g = ntriples::parse(text)?;
        let n = g.len();
        self.load_graph(&g);
        Ok(n)
    }

    /// Recompute the inferred layer from the explicit layer (RDFS rules
    /// 2, 3, 5, 7, 9, 11: domain, range, subPropertyOf transitivity and
    /// inheritance, subClassOf transitivity and type propagation).
    pub fn materialize_inference(&mut self) {
        self.inferred = inference::compute_closure(&self.explicit, self.wk);
        self.dirty = false;
        // the entailed view changed, not just the explicit layer
        self.generation += 1;
    }

    /// Monotonic change counter over the store's contents. Bumped on every
    /// effective insert/remove and on [`Store::materialize_inference`], so
    /// two equal generations guarantee identical entailed query results.
    /// Cheap enough to read per request; used to key the facet cache.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True when the inferred layer is stale (insertions since the last
    /// [`Store::materialize_inference`]). Queries still run but see the old
    /// closure for inferred triples.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    // ---- queries ---------------------------------------------------------

    /// Triples matching a pattern in the **entailed** graph (explicit ∪
    /// inferred). This is what the interaction model queries (§5.2.1).
    pub fn matching(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> impl Iterator<Item = IdTriple> + '_ {
        self.explicit.matching(s, p, o).chain(self.inferred.matching(s, p, o))
    }

    /// Number of entailed triples matching a pattern, counting at most
    /// `cap`. Used by query planners to rank triple patterns by selectivity
    /// without paying for an exact count on huge patterns.
    pub fn count_matching(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        cap: usize,
    ) -> usize {
        self.matching(s, p, o).take(cap).count()
    }

    /// Triples matching a pattern among asserted triples only.
    pub fn matching_explicit(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> impl Iterator<Item = IdTriple> + '_ {
        self.explicit.matching(s, p, o)
    }

    /// Entailed membership test.
    pub fn contains(&self, t: IdTriple) -> bool {
        self.explicit.contains(t) || self.inferred.contains(t)
    }

    /// Number of explicit triples.
    pub fn len(&self) -> usize {
        self.explicit.len()
    }

    /// True when no explicit triples are stored.
    pub fn is_empty(&self) -> bool {
        self.explicit.is_empty()
    }

    /// Number of entailed triples (explicit + inferred).
    pub fn len_entailed(&self) -> usize {
        self.explicit.len() + self.inferred.len()
    }

    /// Iterate every explicit triple.
    pub fn iter_explicit(&self) -> impl Iterator<Item = IdTriple> + '_ {
        self.explicit.iter()
    }

    // ---- sorted posting runs (merge-join building blocks, §5.4) -----------
    //
    // Each accessor fuses the explicit and inferred permutation ranges into
    // one ascending stream (the two layers are disjoint by construction, but
    // the merge dedups defensively), so facet operators can merge-join
    // against a sorted extension instead of probing per element.

    /// Subjects with an entailed `p`-edge to `o`, ascending.
    pub fn subjects_for_po(&self, p: TermId, o: TermId) -> impl Iterator<Item = TermId> + '_ {
        merge_sorted(
            self.explicit.subjects_for_po(p, o),
            self.inferred.subjects_for_po(p, o),
        )
    }

    /// Objects of `s`'s entailed `p`-edges, ascending.
    pub fn objects_for_sp(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        merge_sorted(
            self.explicit.objects_for_sp(s, p),
            self.inferred.objects_for_sp(s, p),
        )
    }

    /// All entailed `(object, subject)` pairs of predicate `p`, ascending by
    /// `(object, subject)` — the full posting run behind facet counting.
    pub fn predicate_pairs(&self, p: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        merge_sorted(self.explicit.pairs_for_p(p), self.inferred.pairs_for_p(p))
    }

    /// Entailed instances of a class as an [`ExtSet`] — the sorted-run
    /// counterpart of [`Store::instances`].
    pub fn instances_set(&self, class: TermId) -> ExtSet {
        ExtSet::from_sorted_iter(self.subjects_for_po(self.wk.rdf_type, class))
    }

    /// Number of entailed `p`-triples, counting at most `cap` (cheap
    /// selectivity probe for the seek-vs-scan decision in [`Store::edge_counts`]).
    pub fn predicate_len_capped(&self, p: TermId, cap: usize) -> usize {
        self.predicate_pairs(p).take(cap).count()
    }

    // ---- the counting kernel ---------------------------------------------

    /// For each distinct term on the `key` side of an entailed `p`-edge,
    /// the number of edges whose *opposite* side lies in `within` (all edges
    /// when `within` is `None`). Returned ascending by term id.
    ///
    /// This is the one counting kernel behind both facet directions and the
    /// per-subject statistics:
    /// - `key = Object`, `within = ext` → forward facet value markers
    ///   `(v, |Restrict(E, p : v)|)`;
    /// - `key = Subject`, `within = ext` → inverse facet markers
    ///   `(s, |Restrict(E, p⁻¹ : s)|)`;
    /// - `key = Subject`, `within = None` → per-subject value counts
    ///   (the old [`Store::value_counts`]).
    ///
    /// Strategy is adaptive: when the extension is small relative to the
    /// predicate's posting run, it seeks per extension element; otherwise it
    /// scans the run once, testing membership against the (densified) set.
    pub fn edge_counts(
        &self,
        p: TermId,
        key: CountKey,
        within: Option<&ExtSet>,
    ) -> Vec<(TermId, usize)> {
        match (key, within) {
            (CountKey::Object, Some(ext)) => {
                if self.prefer_seek(p, ext) {
                    // seek: objects of each extension element, then aggregate
                    let mut occurrences: Vec<TermId> = Vec::new();
                    for e in ext.iter() {
                        occurrences.extend(self.objects_for_sp(e, p));
                    }
                    sort_and_count(occurrences)
                } else {
                    // scan: the POS run groups by object, so counts stream out
                    // already ascending — one pass, no hashing
                    let mut out: Vec<(TermId, usize)> = Vec::new();
                    for (o, s) in self.predicate_pairs(p) {
                        if !ext.contains(s) {
                            continue;
                        }
                        match out.last_mut() {
                            Some((last, n)) if *last == o => *n += 1,
                            _ => out.push((o, 1)),
                        }
                    }
                    out
                }
            }
            (CountKey::Subject, Some(ext)) => {
                let occurrences: Vec<TermId> = if self.prefer_seek(p, ext) {
                    let mut subs = Vec::new();
                    for e in ext.iter() {
                        subs.extend(self.subjects_for_po(p, e));
                    }
                    subs
                } else {
                    self.predicate_pairs(p)
                        .filter(|&(o, _)| ext.contains(o))
                        .map(|(_, s)| s)
                        .collect()
                };
                sort_and_count(occurrences)
            }
            (CountKey::Object, None) => {
                let mut out: Vec<(TermId, usize)> = Vec::new();
                for (o, _) in self.predicate_pairs(p) {
                    match out.last_mut() {
                        Some((last, n)) if *last == o => *n += 1,
                        _ => out.push((o, 1)),
                    }
                }
                out
            }
            (CountKey::Subject, None) => {
                sort_and_count(self.predicate_pairs(p).map(|(_, s)| s).collect())
            }
        }
    }

    /// True when per-element seeks beat a full posting-run scan: the run is
    /// (at least) [`SEEK_FACTOR`]× larger than the extension.
    fn prefer_seek(&self, p: TermId, ext: &ExtSet) -> bool {
        let budget = ext.len().saturating_mul(SEEK_FACTOR).saturating_add(1);
        self.predicate_len_capped(p, budget) >= budget
    }

    // ---- schema helpers (used by the faceted-search model, §5.3) ----------

    /// Instances of a class under RDFS entailment: `inst(c)` of §5.3.1.
    pub fn instances(&self, class: TermId) -> BTreeSet<TermId> {
        self.matching(None, Some(self.wk.rdf_type), Some(class))
            .map(|[s, _, _]| s)
            .collect()
    }

    /// Classes the resource is an entailed instance of.
    pub fn classes_of(&self, resource: TermId) -> BTreeSet<TermId> {
        self.matching(Some(resource), Some(self.wk.rdf_type), None)
            .map(|[_, _, o]| o)
            .collect()
    }

    /// All class ids: declared via `rdf:type rdfs:Class`, used as a type, or
    /// appearing in `rdfs:subClassOf`.
    pub fn classes(&self) -> BTreeSet<TermId> {
        let mut out = BTreeSet::new();
        for [_, _, c] in self.matching(None, Some(self.wk.rdf_type), None) {
            if c != self.wk.rdfs_class && c != self.wk.rdf_property {
                out.insert(c);
            }
        }
        for [s, _, _] in self.matching(None, Some(self.wk.rdf_type), Some(self.wk.rdfs_class)) {
            out.insert(s);
        }
        for [s, _, o] in self.matching(None, Some(self.wk.rdfs_subclassof), None) {
            out.insert(s);
            out.insert(o);
        }
        // instances themselves are not classes; drop anything that is typed
        // *and* never used as a class
        let used_as_class: BTreeSet<TermId> = self
            .matching(None, Some(self.wk.rdf_type), None)
            .map(|[_, _, c]| c)
            .chain(
                self.matching(None, Some(self.wk.rdfs_subclassof), None)
                    .flat_map(|[s, _, o]| [s, o]),
            )
            .chain(
                self.matching(None, Some(self.wk.rdf_type), Some(self.wk.rdfs_class))
                    .map(|[s, _, _]| s),
            )
            .collect();
        out.retain(|c| used_as_class.contains(c));
        out.remove(&self.wk.rdfs_class);
        out.remove(&self.wk.rdf_property);
        out
    }

    /// All property ids: declared `rdf:Property`, used as a predicate of a
    /// data triple, or appearing in `rdfs:subPropertyOf`.
    pub fn properties(&self) -> BTreeSet<TermId> {
        let schema = [
            self.wk.rdf_type,
            self.wk.rdfs_subclassof,
            self.wk.rdfs_subpropertyof,
            self.wk.rdfs_domain,
            self.wk.rdfs_range,
        ];
        let mut out = BTreeSet::new();
        for [_, p, _] in self.explicit.iter() {
            if !schema.contains(&p) {
                out.insert(p);
            }
        }
        for [s, _, _] in self.matching(None, Some(self.wk.rdf_type), Some(self.wk.rdf_property)) {
            out.insert(s);
        }
        for [s, _, o] in self.matching(None, Some(self.wk.rdfs_subpropertyof), None) {
            out.insert(s);
            out.insert(o);
        }
        out
    }

    /// Direct (asserted) subclasses of `c`, excluding `c` itself.
    pub fn direct_subclasses(&self, c: TermId) -> BTreeSet<TermId> {
        self.matching_explicit(None, Some(self.wk.rdfs_subclassof), Some(c))
            .map(|[s, _, _]| s)
            .filter(|&s| s != c)
            .collect()
    }

    /// All entailed subclasses of `c` (reflexive: includes `c`).
    pub fn subclass_closure(&self, c: TermId) -> BTreeSet<TermId> {
        let mut out: BTreeSet<TermId> = self
            .matching(None, Some(self.wk.rdfs_subclassof), Some(c))
            .map(|[s, _, _]| s)
            .collect();
        out.insert(c);
        out
    }

    /// All entailed superclasses of `c` (reflexive).
    pub fn superclass_closure(&self, c: TermId) -> BTreeSet<TermId> {
        let mut out: BTreeSet<TermId> = self
            .matching(Some(c), Some(self.wk.rdfs_subclassof), None)
            .map(|[_, _, o]| o)
            .collect();
        out.insert(c);
        out
    }

    /// Maximal (top-level) classes: classes with no proper superclass
    /// (`maximal≤cl(C)` of §5.3.2).
    pub fn maximal_classes(&self) -> Vec<TermId> {
        self.classes()
            .into_iter()
            .filter(|&c| {
                self.matching(Some(c), Some(self.wk.rdfs_subclassof), None)
                    .all(|[_, _, sup]| sup == c)
            })
            .collect()
    }

    /// Maximal properties w.r.t. `rdfs:subPropertyOf`.
    pub fn maximal_properties(&self) -> Vec<TermId> {
        self.properties()
            .into_iter()
            .filter(|&p| {
                self.matching(Some(p), Some(self.wk.rdfs_subpropertyof), None)
                    .all(|[_, _, sup]| sup == p)
            })
            .collect()
    }

    /// Direct (asserted) subproperties of `p`, excluding `p`.
    pub fn direct_subproperties(&self, p: TermId) -> BTreeSet<TermId> {
        self.matching_explicit(None, Some(self.wk.rdfs_subpropertyof), Some(p))
            .map(|[s, _, _]| s)
            .filter(|&s| s != p)
            .collect()
    }

    /// True if `p` is declared an `owl:FunctionalProperty` **or** is
    /// effectively functional in the data (every subject has ≤ 1 value) —
    /// the HIFUN applicability criterion of §4.1.1.
    pub fn is_effectively_functional(&self, p: TermId) -> bool {
        if self.contains([p, self.wk.rdf_type, self.wk.owl_functional]) {
            return true;
        }
        let mut last_subject: Option<TermId> = None;
        for [s, _, _] in self.matching_explicit(None, Some(p), None) {
            if last_subject == Some(s) {
                return false;
            }
            last_subject = Some(s);
        }
        true
    }

    /// Per-subject value counts for a property (used by feature operators).
    #[deprecated(note = "use `edge_counts(p, CountKey::Subject, None)` — the unified counting kernel")]
    pub fn value_counts(&self, p: TermId) -> HashMap<TermId, usize> {
        // kept as a thin shim over the kernel; note the kernel counts
        // *entailed* edges, which for plain data predicates equals the old
        // explicit-only behaviour (inference adds no data triples for them,
        // except via subPropertyOf — where the entailed count is the more
        // correct answer anyway)
        self.edge_counts(p, CountKey::Subject, None).into_iter().collect()
    }

    /// Export the explicit triples as a [`Graph`] of owned terms.
    pub fn to_graph(&self) -> Graph {
        self.explicit
            .iter()
            .map(|[s, p, o]| {
                Triple::new(self.term(s).clone(), self.term(p).clone(), self.term(o).clone())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX: &str = "http://example.org/";

    fn products_store() -> Store {
        let mut store = Store::new();
        store
            .load_turtle(&format!(
                r#"
                @prefix ex: <{EX}> .
                @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
                ex:Laptop rdfs:subClassOf ex:Product .
                ex:HDType rdfs:subClassOf ex:Product .
                ex:SSD rdfs:subClassOf ex:HDType .
                ex:manufacturer rdfs:subPropertyOf ex:producer .
                ex:laptop1 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:price 900 .
                ex:ssd1 a ex:SSD .
                "#
            ))
            .unwrap();
        store
    }

    fn iri(store: &Store, local: &str) -> TermId {
        store.lookup_iri(&format!("{EX}{local}")).unwrap()
    }

    #[test]
    fn load_and_match() {
        let store = products_store();
        let laptop1 = iri(&store, "laptop1");
        assert!(store.matching(Some(laptop1), None, None).count() >= 3);
    }

    #[test]
    fn subclass_inference_extends_instances() {
        let store = products_store();
        let product = iri(&store, "Product");
        let insts = store.instances(product);
        assert_eq!(insts.len(), 2); // laptop1 via Laptop, ssd1 via SSD→HDType→Product
    }

    #[test]
    fn subproperty_inference_adds_triples() {
        let store = products_store();
        let producer = iri(&store, "producer");
        let laptop1 = iri(&store, "laptop1");
        let dell = iri(&store, "DELL");
        assert!(store.contains([laptop1, producer, dell]));
        // but not asserted
        assert_eq!(store.matching_explicit(Some(laptop1), Some(producer), None).count(), 0);
    }

    #[test]
    fn maximal_classes_and_properties() {
        let store = products_store();
        let maxc = store.maximal_classes();
        let product = iri(&store, "Product");
        assert!(maxc.contains(&product));
        assert!(!maxc.contains(&iri(&store, "Laptop")));
        let maxp = store.maximal_properties();
        assert!(maxp.contains(&iri(&store, "producer")));
        assert!(!maxp.contains(&iri(&store, "manufacturer")));
    }

    #[test]
    fn effectively_functional_detection() {
        let mut store = products_store();
        let price = iri(&store, "price");
        assert!(store.is_effectively_functional(price));
        // add a second price to laptop1 → no longer functional
        store
            .load_turtle(&format!("@prefix ex: <{EX}> . ex:laptop1 ex:price 950 ."))
            .unwrap();
        let price = iri(&store, "price");
        assert!(!store.is_effectively_functional(price));
    }

    #[test]
    fn dirty_tracking() {
        let mut store = Store::new();
        assert!(!store.is_dirty());
        store.insert(&Triple::new(Term::iri("http://s"), Term::iri("http://p"), Term::integer(1)));
        assert!(store.is_dirty());
        store.materialize_inference();
        assert!(!store.is_dirty());
    }

    #[test]
    fn classes_excludes_instances() {
        let store = products_store();
        let classes = store.classes();
        assert!(classes.contains(&iri(&store, "Laptop")));
        assert!(classes.contains(&iri(&store, "Product")));
        assert!(!classes.contains(&iri(&store, "laptop1")));
        assert!(!classes.contains(&iri(&store, "DELL")));
    }

    #[test]
    fn subclass_closure_is_reflexive_transitive() {
        let store = products_store();
        let product = iri(&store, "Product");
        let clo = store.subclass_closure(product);
        for name in ["Product", "Laptop", "HDType", "SSD"] {
            assert!(clo.contains(&iri(&store, name)), "{name} missing");
        }
    }

    #[test]
    fn to_graph_roundtrip() {
        let store = products_store();
        let g = store.to_graph();
        let mut store2 = Store::new();
        store2.load_graph(&g);
        assert_eq!(store.len(), store2.len());
    }

    #[test]
    fn generation_bumps_on_change_only() {
        let mut store = Store::new();
        let g0 = store.generation();
        let t = Triple::new(Term::iri("http://s"), Term::iri("http://p"), Term::integer(1));
        store.insert(&t);
        let g1 = store.generation();
        assert!(g1 > g0, "insert must bump");
        // re-inserting the same triple is a no-op
        store.insert(&t);
        assert_eq!(store.generation(), g1);
        store.materialize_inference();
        let g2 = store.generation();
        assert!(g2 > g1, "materialization must bump");
        let s = store.lookup_iri("http://s").unwrap();
        let p = store.lookup_iri("http://p").unwrap();
        let o = store.matching_explicit(Some(s), Some(p), None).next().unwrap()[2];
        store.remove_ids([s, p, o]);
        assert!(store.generation() > g2, "remove must bump");
        assert!(!store.remove_ids([s, p, o]));
        let g3 = store.generation();
        store.remove_ids([s, p, o]); // absent: no bump
        assert_eq!(store.generation(), g3);
    }

    #[test]
    fn posting_runs_are_sorted_and_entailed() {
        let store = products_store();
        let laptop1 = iri(&store, "laptop1");
        let dell = iri(&store, "DELL");
        let producer = iri(&store, "producer");
        // producer edges exist only in the inferred layer
        let subs: Vec<TermId> = store.subjects_for_po(producer, dell).collect();
        assert_eq!(subs, vec![laptop1]);
        let objs: Vec<TermId> = store.objects_for_sp(laptop1, producer).collect();
        assert_eq!(objs, vec![dell]);
        let pairs: Vec<(TermId, TermId)> = store.predicate_pairs(producer).collect();
        assert_eq!(pairs, vec![(dell, laptop1)]);
        // runs are ascending
        let t = store.well_known().rdf_type;
        let run: Vec<(TermId, TermId)> = store.predicate_pairs(t).collect();
        assert!(run.windows(2).all(|w| w[0] < w[1]), "{run:?}");
        // instances_set agrees with instances
        let product = iri(&store, "Product");
        assert_eq!(store.instances_set(product).to_btree_set(), store.instances(product));
    }

    #[test]
    fn edge_counts_unifies_both_directions() {
        let mut store = Store::new();
        store
            .load_turtle(&format!(
                r#"@prefix ex: <{EX}> .
                   ex:l1 ex:man ex:DELL . ex:l2 ex:man ex:DELL . ex:l3 ex:man ex:Lenovo .
                   ex:l1 ex:usb 2 . ex:l1 ex:ram 8 ."#
            ))
            .unwrap();
        let man = iri(&store, "man");
        let dell = iri(&store, "DELL");
        let lenovo = iri(&store, "Lenovo");
        let l1 = iri(&store, "l1");
        let l3 = iri(&store, "l3");
        let ext: ExtSet = [l1, l3].into_iter().collect();
        // forward: values of `man` over {l1, l3}
        let fwd = store.edge_counts(man, CountKey::Object, Some(&ext));
        let expect: Vec<(TermId, usize)> =
            [(dell, 1), (lenovo, 1)].into_iter().collect::<BTreeSet<_>>().into_iter().collect();
        assert_eq!(fwd, expect);
        // inverse: subjects pointing at {DELL}
        let companies: ExtSet = [dell].into_iter().collect();
        let inv = store.edge_counts(man, CountKey::Subject, Some(&companies));
        assert_eq!(inv.len(), 2);
        assert!(inv.iter().all(|&(_, n)| n == 1));
        // unrestricted per-subject counts match the deprecated API
        let all = store.edge_counts(man, CountKey::Subject, None);
        #[allow(deprecated)]
        let old = store.value_counts(man);
        assert_eq!(all.len(), old.len());
        for (s, n) in all {
            assert_eq!(old.get(&s), Some(&n));
        }
    }

    /// Property: seek and scan strategies agree — forced by extensions on
    /// both sides of the [`SEEK_FACTOR`] threshold.
    #[test]
    fn edge_counts_strategies_agree() {
        use rdfa_prng::StdRng;
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = Store::new();
        let p = store.intern_iri("http://e/p");
        let mut nodes = Vec::new();
        for i in 0..200 {
            nodes.push(store.intern_iri(&format!("http://e/n{i}")));
        }
        for _ in 0..600 {
            let s = nodes[rng.gen_range(0..nodes.len())];
            let o = nodes[rng.gen_range(0..nodes.len())];
            store.insert_ids([s, p, o]);
        }
        store.materialize_inference();
        // brute-force oracle over `matching`
        let oracle = |key: CountKey, ext: Option<&ExtSet>| -> Vec<(TermId, usize)> {
            let mut m: std::collections::BTreeMap<TermId, usize> = Default::default();
            for [s, _, o] in store.matching(None, Some(p), None) {
                let (k, other) = match key {
                    CountKey::Object => (o, s),
                    CountKey::Subject => (s, o),
                };
                if ext.is_none_or(|e| e.contains(other)) {
                    *m.entry(k).or_insert(0) += 1;
                }
            }
            m.into_iter().collect()
        };
        // tiny extension → seek path; large extension → scan path
        for size in [2usize, 150] {
            let ext: ExtSet = (0..size).map(|i| nodes[i]).collect();
            for key in [CountKey::Object, CountKey::Subject] {
                assert_eq!(
                    store.edge_counts(p, key, Some(&ext)),
                    oracle(key, Some(&ext)),
                    "size {size}, key {key:?}"
                );
            }
        }
        assert_eq!(store.edge_counts(p, CountKey::Object, None), oracle(CountKey::Object, None));
        assert_eq!(store.edge_counts(p, CountKey::Subject, None), oracle(CountKey::Subject, None));
    }

    #[test]
    fn remove_marks_dirty_and_removes() {
        let mut store = products_store();
        let laptop1 = iri(&store, "laptop1");
        let price = iri(&store, "price");
        let t = store
            .matching_explicit(Some(laptop1), Some(price), None)
            .next()
            .unwrap();
        assert!(store.remove_ids(t));
        assert!(store.is_dirty());
        store.materialize_inference();
        assert_eq!(store.matching(Some(laptop1), Some(price), None).count(), 0);
    }
}
