//! The 3D "urban area" visualization of §6.3: each entity (e.g. a country,
//! a group of the analytic answer) is a multi-storey cube; each storey
//! (segment) corresponds to one feature, its volume proportional to the
//! feature's value. Buildings are arranged on a square grid like city
//! blocks.

/// One storey of a building.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    pub feature: String,
    pub value: f64,
    /// Height of this storey (footprint is shared by the whole building, so
    /// volume ∝ height).
    pub height: f64,
}

/// One entity's building.
#[derive(Debug, Clone, PartialEq)]
pub struct Building {
    pub label: String,
    /// Grid position (column, row).
    pub grid: (usize, usize),
    /// World-space origin of the building's base.
    pub origin: (f64, f64),
    /// Footprint side length.
    pub side: f64,
    pub segments: Vec<Segment>,
}

impl Building {
    /// Total height of the building.
    pub fn total_height(&self) -> f64 {
        self.segments.iter().map(|s| s.height).sum()
    }
}

/// Lay out one building per entity on a square grid. `features` names the
/// per-entity values; `max_height` is the height given to the largest
/// feature value across the scene (everything scales linearly to it).
pub fn urban_layout(
    entities: &[(String, Vec<f64>)],
    features: &[String],
    side: f64,
    gap: f64,
    max_height: f64,
) -> Vec<Building> {
    let max_value = entities
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let cols = (entities.len() as f64).sqrt().ceil() as usize;
    entities
        .iter()
        .enumerate()
        .map(|(i, (label, values))| {
            let col = i % cols.max(1);
            let row = i / cols.max(1);
            let segments = features
                .iter()
                .zip(values)
                .map(|(f, &v)| Segment {
                    feature: f.clone(),
                    value: v,
                    height: (v / max_value) * max_height,
                })
                .collect();
            Building {
                label: label.clone(),
                grid: (col, row),
                origin: (col as f64 * (side + gap), row as f64 * (side + gap)),
                side,
                segments,
            }
        })
        .collect()
}

/// Export a scene as Wavefront-OBJ-style text (one axis-aligned box per
/// segment), consumable by any 3D viewer.
pub fn to_obj(buildings: &[Building]) -> String {
    let mut out = String::new();
    let mut vertex_base = 1usize;
    for b in buildings {
        out.push_str(&format!("o {}\n", b.label.replace(' ', "_")));
        let (x, z) = b.origin;
        let mut y0 = 0.0;
        for seg in &b.segments {
            let y1 = y0 + seg.height;
            let s = b.side;
            // 8 vertices of the box
            for &(vx, vy, vz) in &[
                (x, y0, z),
                (x + s, y0, z),
                (x + s, y0, z + s),
                (x, y0, z + s),
                (x, y1, z),
                (x + s, y1, z),
                (x + s, y1, z + s),
                (x, y1, z + s),
            ] {
                out.push_str(&format!("v {vx:.2} {vy:.2} {vz:.2}\n"));
            }
            let f = |a: usize, b_: usize, c: usize, d: usize| {
                format!(
                    "f {} {} {} {}\n",
                    vertex_base + a,
                    vertex_base + b_,
                    vertex_base + c,
                    vertex_base + d
                )
            };
            out.push_str(&f(0, 1, 2, 3)); // bottom
            out.push_str(&f(4, 5, 6, 7)); // top
            out.push_str(&f(0, 1, 5, 4));
            out.push_str(&f(1, 2, 6, 5));
            out.push_str(&f(2, 3, 7, 6));
            out.push_str(&f(3, 0, 4, 7));
            vertex_base += 8;
            y0 = y1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene() -> Vec<Building> {
        urban_layout(
            &[
                ("Greece".into(), vec![10.0, 20.0]),
                ("Italy".into(), vec![40.0, 5.0]),
                ("Spain".into(), vec![30.0, 30.0]),
            ],
            &["cases".into(), "recoveries".into()],
            2.0,
            1.0,
            10.0,
        )
    }

    #[test]
    fn heights_proportional_to_values() {
        let b = scene();
        // Italy's "cases" (40) is the max → height 10
        let italy = &b[1];
        assert!((italy.segments[0].height - 10.0).abs() < 1e-9);
        // Greece's "cases" (10) → height 2.5
        assert!((b[0].segments[0].height - 2.5).abs() < 1e-9);
    }

    #[test]
    fn grid_positions_unique() {
        let b = scene();
        let mut seen = std::collections::HashSet::new();
        for building in &b {
            assert!(seen.insert(building.grid));
        }
    }

    #[test]
    fn total_height_sums_segments() {
        let b = scene();
        let spain = &b[2];
        let expect: f64 = spain.segments.iter().map(|s| s.height).sum();
        assert!((spain.total_height() - expect).abs() < 1e-12);
    }

    #[test]
    fn obj_export_shape() {
        let obj = to_obj(&scene());
        // 3 buildings × 2 segments × 8 vertices
        assert_eq!(obj.matches("\nv ").count() + obj.starts_with("v ") as usize, 48);
        assert_eq!(obj.matches("f ").count(), 3 * 2 * 6);
        assert!(obj.contains("o Greece"));
    }

    #[test]
    fn empty_scene() {
        let b = urban_layout(&[], &[], 1.0, 0.5, 5.0);
        assert!(b.is_empty());
        assert_eq!(to_obj(&b), "");
    }
}
