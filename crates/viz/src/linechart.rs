//! Line charts — the time-series rendering of Fig 6.4 (e.g. quantities by
//! month).

/// A line chart: one or more named series over shared x positions.
#[derive(Debug, Clone, PartialEq)]
pub struct LineChart {
    pub title: String,
    pub x_labels: Vec<String>,
    /// `(series name, y values)`; each series has one y per x label.
    pub series: Vec<(String, Vec<f64>)>,
}

impl LineChart {
    /// Build a chart, validating arity.
    pub fn new(
        title: impl Into<String>,
        x_labels: Vec<String>,
        series: Vec<(String, Vec<f64>)>,
    ) -> Result<Self, String> {
        for (name, ys) in &series {
            if ys.len() != x_labels.len() {
                return Err(format!(
                    "series '{name}' has {} points, expected {}",
                    ys.len(),
                    x_labels.len()
                ));
            }
        }
        Ok(LineChart { title: title.into(), x_labels, series })
    }

    fn y_range(&self) -> (f64, f64) {
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for (_, ys) in &self.series {
            for &y in ys {
                lo = lo.min(y);
                hi = hi.max(y);
            }
        }
        if lo > hi {
            (0.0, 1.0)
        } else if (hi - lo).abs() < 1e-12 {
            (lo - 1.0, hi + 1.0)
        } else {
            (lo, hi)
        }
    }

    /// Render as SVG polylines.
    pub fn to_svg(&self, width: u32, height: u32) -> String {
        let palette = ["#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2"];
        let margin = 40.0;
        let (w, h) = (width as f64, height as f64);
        let (lo, hi) = self.y_range();
        let span = hi - lo;
        let n = self.x_labels.len().max(2) as f64;
        let sx = (w - 2.0 * margin) / (n - 1.0);
        let sy = (h - 2.0 * margin) / span;
        let mut svg = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\">\n"
        );
        svg.push_str(&format!(
            "  <text x=\"{}\" y=\"18\" text-anchor=\"middle\" font-size=\"14\">{}</text>\n",
            w / 2.0,
            xml_escape(&self.title)
        ));
        svg.push_str(&format!(
            "  <line x1=\"{m}\" y1=\"{b}\" x2=\"{r}\" y2=\"{b}\" stroke=\"black\"/>\n  <line x1=\"{m}\" y1=\"{t}\" x2=\"{m}\" y2=\"{b}\" stroke=\"black\"/>\n",
            m = margin,
            b = h - margin,
            r = w - margin,
            t = margin
        ));
        for (i, (name, ys)) in self.series.iter().enumerate() {
            let points: Vec<String> = ys
                .iter()
                .enumerate()
                .map(|(j, &y)| {
                    format!("{:.1},{:.1}", margin + j as f64 * sx, h - margin - (y - lo) * sy)
                })
                .collect();
            let color = palette[i % palette.len()];
            svg.push_str(&format!(
                "  <polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"><title>{}</title></polyline>\n",
                points.join(" "),
                xml_escape(name)
            ));
        }
        for (j, label) in self.x_labels.iter().enumerate() {
            svg.push_str(&format!(
                "  <text x=\"{x:.1}\" y=\"{y:.1}\" text-anchor=\"middle\" font-size=\"10\">{l}</text>\n",
                x = margin + j as f64 * sx,
                y = h - margin + 14.0,
                l = xml_escape(label)
            ));
        }
        svg.push_str("</svg>\n");
        svg
    }

    /// Render as terminal text: a simple grid with one character per series.
    pub fn to_text(&self, height: usize) -> String {
        let (lo, hi) = self.y_range();
        let span = hi - lo;
        let markers = ['*', 'o', '+', 'x', '~'];
        let n = self.x_labels.len();
        let mut grid = vec![vec![' '; n * 3]; height];
        for (si, (_, ys)) in self.series.iter().enumerate() {
            for (j, &y) in ys.iter().enumerate() {
                let row = ((hi - y) / span * (height - 1) as f64).round() as usize;
                grid[row.min(height - 1)][j * 3] = markers[si % markers.len()];
            }
        }
        let mut out = format!("{}  (y: {:.1}..{:.1})\n", self.title, lo, hi);
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(n * 3));
        out.push('\n');
        out
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        LineChart::new(
            "quantities by month",
            vec!["Jan".into(), "Feb".into(), "Mar".into()],
            vec![
                ("2021".into(), vec![300.0, 400.0, 200.0]),
                ("2022".into(), vec![350.0, 380.0, 240.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn svg_has_one_polyline_per_series() {
        let svg = chart().to_svg(400, 200);
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("Jan"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(LineChart::new(
            "bad",
            vec!["a".into()],
            vec![("s".into(), vec![1.0, 2.0])]
        )
        .is_err());
    }

    #[test]
    fn text_grid_has_requested_height() {
        let t = chart().to_text(6);
        // title + 6 rows + axis
        assert_eq!(t.lines().count(), 8);
        assert!(t.contains('*'));
        assert!(t.contains('o'));
    }

    #[test]
    fn flat_series_renders() {
        let c = LineChart::new("flat", vec!["a".into(), "b".into()], vec![("s".into(), vec![5.0, 5.0])])
            .unwrap();
        assert!(c.to_svg(100, 100).contains("polyline"));
    }
}
