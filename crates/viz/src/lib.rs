//! # rdfa-viz — answer-frame visualization substrate
//!
//! The presentation layer of §5.1's Answer Frame and Chapter 6's 2D/3D
//! visualizations, GUI-free: every renderer produces plain data structures
//! plus text/SVG output that the examples print.
//!
//! - [`chart2d`] — bar/column charts as SVG and as terminal text (Fig 6.4);
//! - [`spiral`] — the spiral-like placement algorithm of the companion
//!   paper \[116\]: biggest values at the center, no overlaps, bounded space;
//! - [`urban3d`] — the 3D "urban area" metaphor (§6.3): one multi-storey
//!   cube per entity, segment volume proportional to the feature value.

pub mod chart2d;
pub mod linechart;
pub mod piechart;
pub mod spiral;
pub mod urban3d;

pub use chart2d::{BarChart, BarDatum};
pub use linechart::LineChart;
pub use piechart::PieChart;
pub use spiral::{spiral_layout, PlacedCircle};
pub use urban3d::{urban_layout, Building, Segment};
