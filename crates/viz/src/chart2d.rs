//! 2D charts: grouped bar/column charts rendered as SVG or terminal text.

/// One bar: a category label and one value per series.
#[derive(Debug, Clone, PartialEq)]
pub struct BarDatum {
    pub label: String,
    pub values: Vec<f64>,
}

/// A grouped bar chart (one series per aggregate, as in Fig 6.4 where avg,
/// sum and max are charted together).
#[derive(Debug, Clone, PartialEq)]
pub struct BarChart {
    pub title: String,
    pub series_names: Vec<String>,
    pub data: Vec<BarDatum>,
}

impl BarChart {
    /// Build a chart, validating that every datum has one value per series.
    pub fn new(
        title: impl Into<String>,
        series_names: Vec<String>,
        data: Vec<BarDatum>,
    ) -> Result<Self, String> {
        let n = series_names.len();
        for d in &data {
            if d.values.len() != n {
                return Err(format!(
                    "datum '{}' has {} values, expected {}",
                    d.label,
                    d.values.len(),
                    n
                ));
            }
        }
        Ok(BarChart { title: title.into(), series_names, data })
    }

    fn max_value(&self) -> f64 {
        self.data
            .iter()
            .flat_map(|d| d.values.iter().copied())
            .fold(0.0_f64, f64::max)
    }

    /// Render as an SVG document.
    pub fn to_svg(&self, width: u32, height: u32) -> String {
        let margin = 40.0;
        let w = width as f64;
        let h = height as f64;
        let plot_w = w - 2.0 * margin;
        let plot_h = h - 2.0 * margin;
        let max = self.max_value().max(1e-9);
        let groups = self.data.len().max(1) as f64;
        let series = self.series_names.len().max(1) as f64;
        let group_w = plot_w / groups;
        let bar_w = (group_w * 0.8) / series;
        let palette = ["#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2", "#b279a2"];

        let mut svg = String::new();
        svg.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\">\n"
        ));
        svg.push_str(&format!(
            "  <text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"14\">{}</text>\n",
            w / 2.0,
            xml_escape(&self.title)
        ));
        // axes
        svg.push_str(&format!(
            "  <line x1=\"{m}\" y1=\"{b}\" x2=\"{r}\" y2=\"{b}\" stroke=\"black\"/>\n",
            m = margin,
            b = h - margin,
            r = w - margin
        ));
        svg.push_str(&format!(
            "  <line x1=\"{m}\" y1=\"{t}\" x2=\"{m}\" y2=\"{b}\" stroke=\"black\"/>\n",
            m = margin,
            t = margin,
            b = h - margin
        ));
        for (gi, d) in self.data.iter().enumerate() {
            let gx = margin + gi as f64 * group_w + group_w * 0.1;
            for (si, v) in d.values.iter().enumerate() {
                let bh = (v / max) * plot_h;
                let x = gx + si as f64 * bar_w;
                let y = h - margin - bh;
                let color = palette[si % palette.len()];
                svg.push_str(&format!(
                    "  <rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bw:.1}\" height=\"{bh:.1}\" fill=\"{color}\"><title>{t}: {v}</title></rect>\n",
                    bw = bar_w.max(1.0),
                    t = xml_escape(&d.label),
                ));
            }
            svg.push_str(&format!(
                "  <text x=\"{x:.1}\" y=\"{y:.1}\" text-anchor=\"middle\" font-size=\"10\">{l}</text>\n",
                x = gx + group_w * 0.4,
                y = h - margin + 14.0,
                l = xml_escape(&d.label)
            ));
        }
        svg.push_str("</svg>\n");
        svg
    }

    /// Render as terminal text, one bar row per (category, series).
    pub fn to_text(&self, bar_width: usize) -> String {
        let max = self.max_value().max(1e-9);
        let label_w = self
            .data
            .iter()
            .map(|d| d.label.len())
            .chain(self.series_names.iter().map(|s| s.len()))
            .max()
            .unwrap_or(4);
        let mut out = format!("{}\n", self.title);
        for d in &self.data {
            for (si, v) in d.values.iter().enumerate() {
                let n = ((v / max) * bar_width as f64).round() as usize;
                let tag = if self.series_names.len() > 1 {
                    format!("{:<label_w$} {:<label_w$}", d.label, self.series_names[si])
                } else {
                    format!("{:<label_w$}", d.label)
                };
                out.push_str(&format!("{tag} |{} {v}\n", "#".repeat(n)));
            }
        }
        out
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        BarChart::new(
            "avg price by manufacturer",
            vec!["avg".into(), "max".into()],
            vec![
                BarDatum { label: "DELL".into(), values: vec![950.0, 1000.0] },
                BarDatum { label: "ACER".into(), values: vec![820.0, 820.0] },
            ],
        )
        .unwrap()
    }

    #[test]
    fn svg_contains_bars_and_labels() {
        let svg = chart().to_svg(400, 300);
        assert_eq!(svg.matches("<rect").count(), 4);
        assert!(svg.contains("DELL"));
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn text_bars_scale_to_max() {
        let text = chart().to_text(20);
        // max value (1000) gets the full bar
        assert!(text.contains(&"#".repeat(20)), "{text}");
        assert!(text.contains("ACER"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = BarChart::new(
            "t",
            vec!["a".into()],
            vec![BarDatum { label: "x".into(), values: vec![1.0, 2.0] }],
        )
        .unwrap_err();
        assert!(err.contains("expected 1"));
    }

    #[test]
    fn xml_escaping() {
        let c = BarChart::new(
            "a < b & c",
            vec!["s".into()],
            vec![BarDatum { label: "<tag>".into(), values: vec![1.0] }],
        )
        .unwrap();
        let svg = c.to_svg(100, 100);
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("<tag>"));
    }

    #[test]
    fn empty_chart_renders() {
        let c = BarChart::new("empty", vec![], vec![]).unwrap();
        assert!(c.to_svg(100, 100).contains("</svg>"));
        assert_eq!(c.to_text(10), "empty\n");
    }
}
