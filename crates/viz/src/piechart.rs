//! Pie charts — one of the 2D answer renderings of Fig 6.4.

/// A pie chart: labeled non-negative slices.
#[derive(Debug, Clone, PartialEq)]
pub struct PieChart {
    pub title: String,
    pub slices: Vec<(String, f64)>,
}

impl PieChart {
    /// Build a chart; negative values are rejected.
    pub fn new(title: impl Into<String>, slices: Vec<(String, f64)>) -> Result<Self, String> {
        for (label, v) in &slices {
            if *v < 0.0 {
                return Err(format!("negative slice '{label}': {v}"));
            }
        }
        Ok(PieChart { title: title.into(), slices })
    }

    fn total(&self) -> f64 {
        self.slices.iter().map(|(_, v)| v).sum()
    }

    /// Slice shares in [0, 1], in input order (empty when the total is 0).
    pub fn shares(&self) -> Vec<f64> {
        let total = self.total();
        if total <= 0.0 {
            return vec![0.0; self.slices.len()];
        }
        self.slices.iter().map(|(_, v)| v / total).collect()
    }

    /// Render as SVG (circle sectors via path arcs).
    pub fn to_svg(&self, size: u32) -> String {
        let palette = ["#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2", "#b279a2", "#ff9da6"];
        let cx = size as f64 / 2.0;
        let cy = size as f64 / 2.0 + 10.0;
        let r = size as f64 / 2.0 - 30.0;
        let mut svg = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{size}\" height=\"{h}\">\n",
            h = size + 20
        );
        svg.push_str(&format!(
            "  <text x=\"{cx}\" y=\"16\" text-anchor=\"middle\" font-size=\"14\">{}</text>\n",
            xml_escape(&self.title)
        ));
        let mut angle = -std::f64::consts::FRAC_PI_2; // start at 12 o'clock
        for (i, ((label, value), share)) in
            self.slices.iter().zip(self.shares()).enumerate()
        {
            if share <= 0.0 {
                continue;
            }
            let sweep = share * std::f64::consts::TAU;
            let (x0, y0) = (cx + r * angle.cos(), cy + r * angle.sin());
            let end = angle + sweep;
            let (x1, y1) = (cx + r * end.cos(), cy + r * end.sin());
            let large = if sweep > std::f64::consts::PI { 1 } else { 0 };
            let color = palette[i % palette.len()];
            if share >= 1.0 {
                svg.push_str(&format!(
                    "  <circle cx=\"{cx:.1}\" cy=\"{cy:.1}\" r=\"{r:.1}\" fill=\"{color}\"><title>{t}: {value}</title></circle>\n",
                    t = xml_escape(label)
                ));
            } else {
                svg.push_str(&format!(
                    "  <path d=\"M{cx:.1},{cy:.1} L{x0:.1},{y0:.1} A{r:.1},{r:.1} 0 {large} 1 {x1:.1},{y1:.1} Z\" fill=\"{color}\"><title>{t}: {value}</title></path>\n",
                    t = xml_escape(label)
                ));
            }
            angle = end;
        }
        svg.push_str("</svg>\n");
        svg
    }

    /// Render as terminal text: percentage bars.
    pub fn to_text(&self, width: usize) -> String {
        let label_w = self.slices.iter().map(|(l, _)| l.len()).max().unwrap_or(4);
        let mut out = format!("{}\n", self.title);
        for ((label, value), share) in self.slices.iter().zip(self.shares()) {
            let n = (share * width as f64).round() as usize;
            out.push_str(&format!(
                "{:<label_w$} |{} {:.1}% ({value})\n",
                label,
                "#".repeat(n),
                share * 100.0
            ));
        }
        out
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> PieChart {
        PieChart::new(
            "laptops by country",
            vec![("USA".into(), 2.0), ("China".into(), 1.0), ("Taiwan".into(), 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn shares_sum_to_one() {
        let s = chart().shares();
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((s[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn svg_has_one_sector_per_nonzero_slice() {
        let svg = chart().to_svg(200);
        assert_eq!(svg.matches("<path").count(), 3);
    }

    #[test]
    fn single_full_slice_is_a_circle() {
        let c = PieChart::new("one", vec![("all".into(), 5.0)]).unwrap();
        assert!(c.to_svg(100).contains("<circle"));
    }

    #[test]
    fn rejects_negative() {
        assert!(PieChart::new("bad", vec![("x".into(), -1.0)]).is_err());
    }

    #[test]
    fn zero_total_renders_gracefully() {
        let c = PieChart::new("zero", vec![("x".into(), 0.0)]).unwrap();
        assert!(c.to_svg(100).contains("</svg>"));
        assert!(c.to_text(10).contains("0.0%"));
    }
}
