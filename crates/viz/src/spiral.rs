//! The spiral-like placement algorithm of the companion paper
//! (Tzitzikas, Papadaki, Chatzakis, *JIIS* 2022, publication \[116\] of the
//! dissertation): place a set of weighted values in the plane so that the
//! biggest values sit at the center of a spiral and the smallest in the
//! periphery, with no overlaps, no holes in the periphery, and bounded
//! total extent.
//!
//! Each value becomes a circle of radius `√value · scale` (area ∝ value).
//! Values are sorted descending and placed along an Archimedean spiral,
//! advancing until the candidate position collides with nothing already
//! placed. The walk is monotone, so the algorithm is `O(n²)` in collision
//! checks but linear in spiral progress — fast enough for the interactive
//! sizes the paper targets (thousands of values).

/// A placed value.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedCircle {
    /// Index into the input slice.
    pub index: usize,
    pub value: f64,
    pub x: f64,
    pub y: f64,
    pub radius: f64,
}

impl PlacedCircle {
    /// Distance from the layout origin.
    pub fn distance_from_center(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    fn overlaps(&self, other: &PlacedCircle) -> bool {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let d2 = dx * dx + dy * dy;
        let rr = self.radius + other.radius;
        d2 < rr * rr * 0.999 // small tolerance for tangency
    }
}

/// Lay out `values` (non-negative weights) on a spiral. `scale` converts
/// `√value` to a radius; zero values get a minimal radius so they remain
/// visible. Returns the circles in placement (descending-value) order.
pub fn spiral_layout(values: &[f64], scale: f64) -> Vec<PlacedCircle> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).unwrap_or(std::cmp::Ordering::Equal));

    let mut placed: Vec<PlacedCircle> = Vec::with_capacity(values.len());
    let mut theta = 0.0_f64;
    for &idx in &order {
        let value = values[idx].max(0.0);
        let radius = (value.sqrt() * scale).max(scale * 0.2);
        if placed.is_empty() {
            placed.push(PlacedCircle { index: idx, value, x: 0.0, y: 0.0, radius });
            continue;
        }
        // advance along the spiral until the circle fits
        let pitch = placed[0].radius.max(radius) * 0.35;
        loop {
            let r = pitch * theta / std::f64::consts::TAU + placed[0].radius + radius;
            let candidate = PlacedCircle {
                index: idx,
                value,
                x: r * theta.cos(),
                y: r * theta.sin(),
                radius,
            };
            if placed.iter().all(|p| !candidate.overlaps(p)) {
                placed.push(candidate);
                break;
            }
            // step size shrinks with distance so the walk stays dense
            theta += (radius * 0.5 / (r + 1e-9)).max(0.01);
        }
    }
    placed
}

/// The bounding box `(min_x, min_y, max_x, max_y)` of a layout.
pub fn bounding_box(layout: &[PlacedCircle]) -> (f64, f64, f64, f64) {
    let mut bb = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
    for p in layout {
        bb.0 = bb.0.min(p.x - p.radius);
        bb.1 = bb.1.min(p.y - p.radius);
        bb.2 = bb.2.max(p.x + p.radius);
        bb.3 = bb.3.max(p.y + p.radius);
    }
    if layout.is_empty() {
        (0.0, 0.0, 0.0, 0.0)
    } else {
        bb
    }
}

/// Render a layout as SVG (labels = input indices).
pub fn to_svg(layout: &[PlacedCircle], width: u32) -> String {
    let (x0, y0, x1, y1) = bounding_box(layout);
    let span = (x1 - x0).max(y1 - y0).max(1e-9);
    let s = width as f64 / span;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{width}\">\n"
    );
    for p in layout {
        svg.push_str(&format!(
            "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{:.1}\" fill=\"#4c78a8\" fill-opacity=\"0.7\"><title>{}: {}</title></circle>\n",
            (p.x - x0) * s,
            (p.y - y0) * s,
            p.radius * s,
            p.index,
            p.value
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_prng::StdRng;

    #[test]
    fn biggest_value_at_center() {
        let values = [5.0, 100.0, 20.0, 1.0, 50.0];
        let layout = spiral_layout(&values, 1.0);
        assert_eq!(layout[0].index, 1); // value 100 placed first
        assert_eq!(layout[0].distance_from_center(), 0.0);
    }

    #[test]
    fn no_overlaps_small() {
        let values = [10.0, 8.0, 6.0, 4.0, 2.0, 1.0, 1.0, 1.0];
        let layout = spiral_layout(&values, 1.0);
        for i in 0..layout.len() {
            for j in i + 1..layout.len() {
                assert!(
                    !layout[i].overlaps(&layout[j]),
                    "{i} and {j} overlap: {:?} {:?}",
                    layout[i],
                    layout[j]
                );
            }
        }
    }

    #[test]
    fn power_law_distribution_stays_bounded() {
        // the paper's motivating case: power-law sizes
        let values: Vec<f64> = (1..=200).map(|i| 1000.0 / i as f64).collect();
        let layout = spiral_layout(&values, 1.0);
        let (x0, y0, x1, y1) = bounding_box(&layout);
        let area_used: f64 = layout
            .iter()
            .map(|p| std::f64::consts::PI * p.radius * p.radius)
            .sum();
        let bbox_area = (x1 - x0) * (y1 - y0);
        // packing efficiency: circles should fill a reasonable share of the box
        assert!(area_used / bbox_area > 0.2, "too sparse: {}", area_used / bbox_area);
    }

    #[test]
    fn distance_roughly_monotone_in_rank() {
        let values: Vec<f64> = (1..=40).map(|i| (41 - i) as f64 * 10.0).collect();
        let layout = spiral_layout(&values, 1.0);
        // average distance of the first half must be below the second half
        let mid = layout.len() / 2;
        let d1: f64 = layout[..mid].iter().map(|p| p.distance_from_center()).sum::<f64>() / mid as f64;
        let d2: f64 =
            layout[mid..].iter().map(|p| p.distance_from_center()).sum::<f64>() / (layout.len() - mid) as f64;
        assert!(d1 < d2, "bigger values should be nearer the center: {d1} vs {d2}");
    }

    #[test]
    fn svg_renders() {
        let layout = spiral_layout(&[3.0, 2.0, 1.0], 1.0);
        let svg = to_svg(&layout, 200);
        assert_eq!(svg.matches("<circle").count(), 3);
    }

    #[test]
    fn empty_and_single() {
        assert!(spiral_layout(&[], 1.0).is_empty());
        let one = spiral_layout(&[7.0], 1.0);
        assert_eq!(one.len(), 1);
        assert_eq!(bounding_box(&[]), (0.0, 0.0, 0.0, 0.0));
    }

    /// Property: no random layout ever contains overlapping circles.
    #[test]
    fn layout_never_overlaps() {
        for case in 0u64..32 {
            let mut rng = StdRng::seed_from_u64(case);
            let n = rng.gen_range(1..40);
            let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1f64..100.0)).collect();
            let layout = spiral_layout(&values, 1.0);
            assert_eq!(layout.len(), values.len());
            for i in 0..layout.len() {
                for j in i + 1..layout.len() {
                    assert!(
                        !layout[i].overlaps(&layout[j]),
                        "case {case}: {i} and {j} overlap"
                    );
                }
            }
        }
    }
}
