//! Concurrent read/write benchmark (PR 6): read throughput under snapshot
//! isolation while a writer continuously publishes new generations, plus
//! the admission controller's shed rate at saturation.
//!
//! Two parts:
//!
//! 1. **Snapshot read scaling** — the products KG behind a `SnapshotStore`;
//!    1/2/4/8 reader threads each loop `snapshot()` → aggregation query
//!    (AVG price per manufacturer over laptops) for a fixed window while one
//!    writer commits a two-triple batch every few milliseconds. Readers
//!    never take a lock the writer holds: each query runs against a pinned
//!    `Arc<Store>`, so throughput is bounded by CPU, not by write activity.
//!    Reported per thread count: queries completed, queries/sec, writer
//!    generations published in the same window.
//! 2. **Shed rate at saturation** — an HTTP server with a deliberately tiny
//!    in-flight budget (`max_in_flight = 2`) takes a burst of 8-way
//!    concurrent `/slow` requests; the excess is refused with
//!    `503 + Retry-After` instead of queueing behind the slow work. Reports
//!    offered/served/shed counts and verifies the server answers a normal
//!    query immediately after the burst.
//!
//! Writes `BENCH_6.json` so CI can archive the artifact.
//!
//! Run with `cargo bench --bench concurrent_bench`.

use rdf_analytics::datagen::ProductsGenerator;
use rdf_analytics::model::{Term, Triple};
use rdf_analytics::server::{percent_encode, Server, ServerConfig};
use rdf_analytics::sparql::Engine;
use rdf_analytics::store::{LoadOptions, SnapshotStore, Store};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const QUERY: &str = "PREFIX ex: <http://www.ics.forth.gr/example#> \
    SELECT ?m (AVG(?p) AS ?avg) (COUNT(?x) AS ?n) \
    WHERE { ?x a ex:Laptop ; ex:manufacturer ?m ; ex:price ?p . } \
    GROUP BY ?m";

/// One reader-scaling measurement: `readers` query threads against live
/// write traffic for `window`. Returns (queries completed, generations
/// published while measuring).
fn measure_reads(shared: &Arc<SnapshotStore>, readers: usize, window: Duration) -> (u64, u64) {
    let stop = AtomicBool::new(false);
    let gen_before = shared.generation();
    let mut total = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..readers {
            handles.push(scope.spawn(|| {
                let mut done = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = shared.snapshot();
                    let results = Engine::builder(&snap)
                        .build()
                        .run(QUERY)
                        .expect("benchmark query");
                    std::hint::black_box(results);
                    done += 1;
                }
                done
            }));
        }
        // one writer: a fresh two-triple laptop every 2ms, each commit a
        // full copy-on-write publish the readers never wait for. The
        // subject counter is process-global so successive measurement
        // windows keep inserting NEW triples — re-inserting an existing
        // triple is a no-op that would publish nothing.
        static NEXT_SUBJECT: AtomicUsize = AtomicUsize::new(0);
        let writer = scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                let i = NEXT_SUBJECT.fetch_add(1, Ordering::Relaxed);
                shared.with_write(|s| {
                    let iri = format!("http://www.ics.forth.gr/example#bench-w{i}");
                    s.insert(&Triple::new(
                        Term::iri(&iri),
                        Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                        Term::iri("http://www.ics.forth.gr/example#Laptop"),
                    ));
                    s.insert(&Triple::new(
                        Term::iri(&iri),
                        Term::iri("http://www.ics.forth.gr/example#price"),
                        Term::integer(500 + (i as i64 % 900)),
                    ));
                });
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        for h in handles {
            total += h.join().unwrap();
        }
    });
    (total, shared.generation() - gen_before)
}

fn http(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    // read_to_string only returns on server close: opt out of keep-alive
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: x\r\nAccept: */*\r\nConnection: close\r\n\r\n"),
    )
}

/// Saturate a 2-slot server with `waves` × 8 concurrent slow requests;
/// returns (offered, served, shed).
fn measure_shed(waves: usize) -> (u64, u64, u64) {
    let mut store = Store::new();
    ProductsGenerator::new(300, 7).generate_into(&mut store, LoadOptions::default());
    let config = ServerConfig {
        workers: 8,
        max_in_flight: 2,
        debug_routes: true,
        ..ServerConfig::default()
    };
    let server = Server::start_with(store, 0, config).expect("bind");
    let addr = server.addr();

    let mut offered = 0u64;
    let mut served = 0u64;
    for _ in 0..waves {
        let outcomes: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(move || get(addr, "/slow?ms=100")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        offered += outcomes.len() as u64;
        served += outcomes.iter().filter(|r| r.starts_with("HTTP/1.1 200")).count() as u64;
    }
    let shed = server.shed_requests();
    assert_eq!(served + shed, offered, "every request either served or shed");

    // the shed path must not have degraded normal service
    let resp = get(addr, &format!("/v1/query?query={}", percent_encode(QUERY)));
    assert!(resp.starts_with("HTTP/1.1 200"), "post-burst query failed: {resp}");
    server.stop();
    (offered, served, shed)
}

fn main() {
    let mut store = Store::new();
    ProductsGenerator::new(2_000, 7).generate_into(&mut store, LoadOptions::default());
    let triples = store.len();
    let shared = Arc::new(SnapshotStore::new(store));

    // warm-up: fault in indexes and the query plan once
    let (_, _) = measure_reads(&shared, 1, Duration::from_millis(200));

    let window = Duration::from_millis(800);
    let mut rows = Vec::new();
    for readers in [1usize, 2, 4, 8] {
        let (queries, generations) = measure_reads(&shared, readers, window);
        let qps = queries as f64 / window.as_secs_f64();
        println!(
            "{readers} reader(s): {queries} queries in {:?} ({qps:.0} q/s), {generations} generations published",
            window
        );
        rows.push(format!(
            "{{\n    \"readers\": {readers},\n    \"queries\": {queries},\n    \"queries_per_sec\": {qps:.1},\n    \"writer_generations\": {generations}\n  }}"
        ));
    }

    let (offered, served, shed) = measure_shed(4);
    let shed_rate = shed as f64 / offered as f64;
    println!(
        "saturation: {offered} offered, {served} served, {shed} shed ({:.0}% shed rate)",
        shed_rate * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"concurrent_snapshot_reads\",\n  \"triples\": {triples},\n  \"window_ms\": {},\n  \"read_scaling\": [{}\n  ],\n  \"saturation\": {{\n    \"max_in_flight\": 2,\n    \"offered\": {offered},\n    \"served\": {served},\n    \"shed\": {shed},\n    \"shed_rate\": {shed_rate:.3}\n  }}\n}}\n",
        window.as_millis(),
        rows.join(", ")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_6.json");
    std::fs::write(&out, &json).expect("write BENCH_6.json");
    println!("{json}");
    println!("wrote {}", out.display());
}
