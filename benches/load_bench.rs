//! Streaming-delivery + sustained-load benchmark (PR 7).
//!
//! Three parts:
//!
//! 1. **Streaming acceptance** — a `LIMIT`-less SELECT whose cross join
//!    yields ≥1M rows is fetched over HTTP with chunked decoding on the
//!    client. Asserts the response really is `Transfer-Encoding: chunked`
//!    (no `Content-Length`, so no whole-body `String` was built), counts
//!    the rows, and verifies no single chunk exceeded the configured
//!    serialization buffer — the bounded-memory claim, observed on the
//!    wire.
//! 2. **Mid-stream disconnect** — the same query is started and the client
//!    hangs up after one chunk; the server's in-flight gauge must return
//!    to zero promptly (slot released, worker freed).
//! 3. **Sustained load** — the open-loop Poisson driver from `rdfa-bench`
//!    offers a mixed query/update/facet workload, first clean, then with
//!    chaos (mid-stream disconnects + slow readers via `FaultModel`).
//!    Reports p50/p99/p999 latency and shed rate for both runs.
//!
//! Writes `BENCH_7.json` so CI can archive the artifact. Set
//! `LOAD_BENCH_SMOKE=1` to run a scaled-down version (CI smoke job).
//!
//! Run with `cargo bench --bench load_bench`.

use rdf_analytics::server::{percent_encode, Server, ServerConfig};
use rdf_analytics::sparql::EvalLimits;
use rdf_analytics::store::Store;
use rdfa_bench::load::{self, LoadConfig, Workload};
use rdfa_datagen::FaultModel;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const CHUNK_BYTES: usize = 64 << 10;

/// `n` laptops, each with a price and one of 16 brands, so `SELECT ?a ?b`
/// over the Laptop class cross-joins to `n^2` rows.
fn laptops(n: usize) -> Store {
    let mut ttl = String::from("@prefix ex: <http://example.org/> .\n");
    for i in 0..n {
        ttl.push_str(&format!(
            "ex:l{i} a ex:Laptop ; ex:price {} ; ex:brand ex:b{} .\n",
            500 + (i % 2500),
            i % 16
        ));
    }
    let mut s = Store::new();
    s.load_turtle(&ttl).unwrap();
    s
}

fn cross_join_query() -> String {
    percent_encode(
        "PREFIX ex: <http://example.org/> SELECT ?a ?b WHERE { \
           ?a a ex:Laptop . ?b a ex:Laptop . }",
    )
}

/// Fetch `path` expecting a chunked CSV response; decode the framing and
/// return (header block, data rows, body bytes, largest chunk, elapsed).
fn fetch_chunked(addr: SocketAddr, path: &str) -> (String, u64, u64, usize, Duration) {
    let t = Instant::now();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(600))).unwrap();
    stream
        .write_all(
            format!(
                "GET {path} HTTP/1.1\r\nHost: bench\r\nAccept: text/csv\r\nConnection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line == "\r\n" || line.is_empty() {
            break;
        }
        head.push_str(&line);
    }
    let (mut lines, mut bytes, mut max_chunk) = (0u64, 0u64, 0usize);
    loop {
        let mut size_line = String::new();
        reader.read_line(&mut size_line).unwrap();
        let size = usize::from_str_radix(size_line.trim(), 16)
            .unwrap_or_else(|_| panic!("bad chunk size line {size_line:?}"));
        if size == 0 {
            break;
        }
        let mut chunk = vec![0u8; size + 2]; // payload + trailing CRLF
        reader.read_exact(&mut chunk).unwrap();
        lines += chunk[..size].iter().filter(|&&b| b == b'\n').count() as u64;
        bytes += size as u64;
        max_chunk = max_chunk.max(size);
    }
    // every CSV line (header included) ends in CRLF; rows = lines - header
    (head, lines.saturating_sub(1), bytes, max_chunk, t.elapsed())
}

fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: bench\r\nAccept: */*\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

fn main() {
    let smoke = std::env::var("LOAD_BENCH_SMOKE").is_ok();
    // full: 1024^2 = 1,048,576 rows; smoke: 320^2 = 102,400 rows
    let side = if smoke { 320 } else { 1024 };
    let expected_rows = (side * side) as u64;

    let config = ServerConfig {
        workers: 4,
        max_in_flight: 16,
        stream_chunk_bytes: CHUNK_BYTES,
        // streaming a LIMIT-less million-row SELECT is the whole point:
        // no interactive row cap, just a generous deadline backstop
        limits: EvalLimits::unlimited().with_deadline(Duration::from_secs(300)),
        write_timeout: Duration::from_secs(2),
        debug_routes: false,
        ..ServerConfig::default()
    };
    let server = Server::start_with(laptops(side), 0, config).expect("bind");
    let addr = server.addr();
    let big_path = format!("/v1/query?query={}", cross_join_query());

    // ---- part 1: ≥1M rows over chunked transfer, bounded chunks ----
    let (head, rows, bytes, max_chunk, elapsed) = fetch_chunked(addr, &big_path);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        head.to_ascii_lowercase().contains("transfer-encoding: chunked"),
        "not chunked:\n{head}"
    );
    assert!(
        !head.to_ascii_lowercase().contains("content-length"),
        "a streamed response must not know its length up front:\n{head}"
    );
    assert_eq!(rows, expected_rows, "row count on the wire");
    // one row can straddle the flush threshold, so allow a row of slack
    assert!(
        max_chunk <= CHUNK_BYTES + 256,
        "chunk of {max_chunk} bytes exceeds the {CHUNK_BYTES} buffer bound"
    );
    let rows_per_sec = rows as f64 / elapsed.as_secs_f64();
    println!(
        "streamed {rows} rows / {bytes} bytes in {elapsed:?} ({rows_per_sec:.0} rows/s), max chunk {max_chunk}"
    );

    // ---- part 2: mid-stream disconnect releases the slot ----
    let disconnect_drain = {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!("GET {big_path} HTTP/1.1\r\nHost: bench\r\nAccept: text/csv\r\n\r\n")
                    .as_bytes(),
            )
            .unwrap();
        // read one buffer's worth so the stream is definitely underway
        let mut buf = vec![0u8; 32 << 10];
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let _ = stream.read(&mut buf);
        drop(stream);
        let t = Instant::now();
        while server.in_flight() != 0 {
            assert!(
                t.elapsed() < Duration::from_secs(30),
                "in-flight slot never released after mid-stream disconnect"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        println!("mid-stream disconnect: slot released in {:?}", t.elapsed());
        t.elapsed()
    };
    let resp = get(
        addr,
        &format!(
            "/v1/query?query={}",
            percent_encode(
                "PREFIX ex: <http://example.org/> SELECT (COUNT(?x) AS ?n) WHERE { ?x a ex:Laptop . }"
            )
        ),
    );
    assert!(resp.starts_with("HTTP/1.1 200"), "post-disconnect query failed: {resp}");

    // ---- part 3: open-loop sustained load, clean then chaotic ----
    let workload = Workload {
        query_paths: vec![
            format!(
                "/v1/query?query={}",
                percent_encode(
                    "PREFIX ex: <http://example.org/> SELECT ?b (COUNT(?x) AS ?n) (AVG(?p) AS ?avg) \
                     WHERE { ?x ex:brand ?b ; ex:price ?p . } GROUP BY ?b"
                )
            ),
            format!(
                "/v1/query?query={}",
                percent_encode(
                    "PREFIX ex: <http://example.org/> SELECT ?x ?p WHERE { ?x ex:price ?p . FILTER(?p > 2000) }"
                )
            ),
            // a brand-restricted cross join: big enough to stream several
            // chunks, small enough for sustained traffic
            format!(
                "/v1/query?query={}",
                percent_encode(
                    "PREFIX ex: <http://example.org/> SELECT ?a ?b WHERE { \
                       ?a ex:brand ex:b0 . ?b ex:brand ex:b0 . }"
                )
            ),
        ],
        update_bodies: (0..8)
            .map(|i| {
                format!(
                    "PREFIX ex: <http://example.org/> INSERT DATA {{ ex:load{i} a ex:Laptop ; ex:price {} . }}",
                    700 + i
                )
            })
            .collect(),
        facet_paths: vec![
            "/v1/facets".to_owned(),
            format!("/v1/facets?class={}", percent_encode("http://example.org/Laptop")),
        ],
    };
    let (rps, load_secs) = if smoke { (25.0, 3) } else { (60.0, 8) };
    let base_cfg = LoadConfig {
        target_rps: rps,
        duration: Duration::from_secs(load_secs),
        faults: FaultModel::none(),
        slow_read_delay: Duration::from_millis(150),
        slow_read_max_sips: 25,
        client_timeout: Duration::from_secs(30),
        seed: 0x10ad_0007,
        ..LoadConfig::default()
    };
    let baseline = load::run(addr, &workload, &base_cfg);
    println!(
        "baseline: {} offered @ {:.0} rps, {} ok / {} shed, p50 {:.1}ms p99 {:.1}ms p999 {:.1}ms",
        baseline.offered,
        baseline.achieved_rps,
        baseline.completed,
        baseline.shed,
        baseline.p50_ms,
        baseline.p99_ms,
        baseline.p999_ms
    );
    assert!(baseline.completed > 0, "baseline served nothing");

    let chaos_cfg = LoadConfig {
        faults: FaultModel { error_prob: 0.10, timeout_prob: 0.06, transient_ratio: 1.0 },
        seed: 0x10ad_0008,
        ..base_cfg.clone()
    };
    let chaos = load::run(addr, &workload, &chaos_cfg);
    println!(
        "chaos: {} offered, {} ok / {} shed / {} disconnects / {} slow-cut, p50 {:.1}ms p99 {:.1}ms p999 {:.1}ms",
        chaos.offered,
        chaos.completed,
        chaos.shed,
        chaos.injected_disconnects,
        chaos.slow_reader_cuts,
        chaos.p50_ms,
        chaos.p99_ms,
        chaos.p999_ms
    );
    assert!(chaos.completed > 0, "chaos run served nothing");
    assert!(
        chaos.injected_disconnects + chaos.slow_reader_cuts > 0,
        "chaos run injected no faults"
    );

    // after both storms every slot must be back
    let t = Instant::now();
    while server.in_flight() != 0 {
        assert!(
            t.elapsed() < Duration::from_secs(30),
            "in-flight gauge stuck at {} after load run",
            server.in_flight()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let json = format!(
        "{{\n  \"bench\": \"streaming_sustained_load\",\n  \"smoke\": {smoke},\n  \"stream\": {{\n    \"rows\": {rows},\n    \"bytes\": {bytes},\n    \"max_chunk\": {max_chunk},\n    \"chunk_cap\": {CHUNK_BYTES},\n    \"elapsed_ms\": {},\n    \"rows_per_sec\": {rows_per_sec:.0},\n    \"disconnect_drain_ms\": {}\n  }},\n  \"baseline\": {},\n  \"chaos\": {}\n}}\n",
        elapsed.as_millis(),
        disconnect_drain.as_millis(),
        baseline.to_json(),
        chaos.to_json(),
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_7.json");
    std::fs::write(&out, &json).expect("write BENCH_7.json");
    println!("{json}");
    println!("wrote {}", out.display());
    server.stop();
}
