//! The §5.3.3 claim, exercised in depth: answers reload as ordinary RDF
//! datasets, restrictions over them express HAVING, and the process nests
//! *without limit*. Plus a property test that the two evaluation strategies
//! agree on generated data across random click sequences.

use rdf_analytics::analytics::{AnalyticsSession, EvalStrategy, GroupSpec, MeasureSpec};
use rdf_analytics::datagen::{ProductsGenerator, EX};
use rdf_analytics::facets::PathStep;
use rdf_analytics::hifun::{AggOp, DerivedFn};
use rdf_analytics::model::Value;
use rdf_analytics::store::Store;
use rdfa_prng::StdRng;

fn build(n: usize, seed: u64) -> Store {
    let mut s = Store::new();
    s.load_graph(&ProductsGenerator::new(n, seed).generate());
    s
}

fn id(s: &Store, local: &str) -> rdf_analytics::store::TermId {
    s.lookup_iri(&format!("{EX}{local}")).unwrap()
}

/// Three levels of nesting:
/// L1: avg price by (company, year)          over the products KG
/// L2: count of expensive (company, year) groups by company   over reload(L1)
/// L3: count of companies by that count                       over reload(L2)
#[test]
fn three_level_nesting() {
    let store = build(400, 5);
    let mut l1 = AnalyticsSession::start(&store);
    l1.select_class(id(&store, "Laptop")).unwrap();
    l1.add_grouping(GroupSpec::property(id(&store, "manufacturer")));
    l1.add_grouping(GroupSpec::property(id(&store, "releaseDate")).with_derived(DerivedFn::Year));
    l1.set_measure(MeasureSpec::property(id(&store, "price")));
    l1.set_ops(vec![AggOp::Avg]);
    let a1 = l1.run().unwrap();
    assert!(a1.len() > 4);

    // level 2 over the reloaded answer, with a HAVING via range filter
    let d1 = a1.load_as_dataset();
    let mut l2 = AnalyticsSession::start(&d1);
    l2.select_class(d1.lookup_iri("urn:rdfa:af:Row").unwrap()).unwrap();
    let avg_prop = d1.lookup_iri(&a1.column_property(2)).unwrap();
    l2.select_range(&[PathStep::fwd(avg_prop)], Some(Value::Float(1500.0)), None)
        .unwrap();
    let expensive_groups = l2.facets().extension().len();
    assert!(expensive_groups > 0 && expensive_groups < a1.len());
    let company_prop = d1.lookup_iri(&a1.column_property(0)).unwrap();
    l2.add_grouping(GroupSpec::property(company_prop));
    l2.set_ops(vec![AggOp::Count]);
    let a2 = l2.run().unwrap();
    // per-company counts sum to the number of surviving groups
    let total: i64 = a2
        .rows
        .iter()
        .map(|r| {
            Value::from_term(r[1].as_ref().unwrap())
                .as_f64()
                .unwrap() as i64
        })
        .sum();
    assert_eq!(total as usize, expensive_groups);

    // level 3 over the reload of level 2
    let d2 = a2.load_as_dataset();
    let mut l3 = AnalyticsSession::start(&d2);
    l3.select_class(d2.lookup_iri("urn:rdfa:af:Row").unwrap()).unwrap();
    let count_prop = d2.lookup_iri(&a2.column_property(1)).unwrap();
    l3.add_grouping(GroupSpec::property(count_prop));
    l3.set_ops(vec![AggOp::Count]);
    let a3 = l3.run().unwrap();
    // the histogram's counts sum to the number of companies at level 2
    let companies: i64 = a3
        .rows
        .iter()
        .map(|r| {
            Value::from_term(r[1].as_ref().unwrap())
                .as_f64()
                .unwrap() as i64
        })
        .sum();
    assert_eq!(companies as usize, a2.len());
}

/// Reload invariants: shape, property naming, and facet completeness.
#[test]
fn reload_shape_invariants() {
    let store = build(150, 9);
    let mut s = AnalyticsSession::start(&store);
    s.select_class(id(&store, "Laptop")).unwrap();
    s.add_grouping(GroupSpec::property(id(&store, "manufacturer")));
    s.set_measure(MeasureSpec::property(id(&store, "price")));
    s.set_ops(vec![AggOp::Min, AggOp::Max]);
    let frame = s.run().unwrap();
    let derived = frame.load_as_dataset();
    // n rows × (k columns + type triple)
    assert_eq!(derived.len(), frame.len() * (frame.headers.len() + 1));
    // one facet per column over the Row class
    let rows = derived.instances_set(derived.lookup_iri("urn:rdfa:af:Row").unwrap());
    assert_eq!(rows.len(), frame.len());
    let facets = rdf_analytics::facets::property_facets(&derived, &rows);
    assert_eq!(facets.len(), frame.headers.len());
}

/// The strategy-equivalence property over random interaction sequences on
/// generated (functional) data — the system-level counterpart of the
/// translation-soundness test.
#[derive(Debug, Clone)]
struct Clicks {
    usb_min: Option<i64>,
    group_origin_path: bool,
    group_year: bool,
    measure_price: bool,
    op: u8,
}

fn rand_clicks(rng: &mut StdRng) -> Clicks {
    Clicks {
        usb_min: rng.gen_bool(0.5).then(|| rng.gen_range(1i64..5)),
        group_origin_path: rng.gen_bool(0.5),
        group_year: rng.gen_bool(0.5),
        measure_price: rng.gen_bool(0.5),
        op: rng.gen_range(0u8..5),
    }
}

fn drive(store: &Store, c: &Clicks, strategy: EvalStrategy) -> Option<Vec<Vec<String>>> {
    let mut s = AnalyticsSession::start(store).with_strategy(strategy);
    s.select_class(id(store, "Laptop")).ok()?;
    if let Some(m) = c.usb_min {
        s.select_range(&[PathStep::fwd(id(store, "USBPorts"))], Some(Value::Int(m)), None)
            .ok()?;
    }
    if c.group_origin_path {
        s.add_grouping(GroupSpec::path(vec![id(store, "manufacturer"), id(store, "origin")]));
    }
    if c.group_year {
        s.add_grouping(
            GroupSpec::property(id(store, "releaseDate")).with_derived(DerivedFn::Year),
        );
    }
    let op = [AggOp::Count, AggOp::Sum, AggOp::Avg, AggOp::Min, AggOp::Max][c.op as usize];
    if c.measure_price || op != AggOp::Count {
        s.set_measure(MeasureSpec::property(id(store, "price")));
    }
    s.set_ops(vec![op]);
    let frame = s.run().ok()?;
    let mut rows: Vec<Vec<String>> = frame
        .rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|cell| match cell {
                    None => "∅".into(),
                    Some(t) => match Value::from_term(t).as_f64() {
                        Some(f) => format!("{f:.6}"),
                        None => t.display_name(),
                    },
                })
                .collect()
        })
        .collect();
    rows.sort();
    Some(rows)
}

#[test]
fn strategies_agree_on_random_sessions() {
    for case in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(case);
        let seed = rng.gen_range(0u64..500);
        let c = rand_clicks(&mut rng);
        let store = build(80, seed);
        let a = drive(&store, &c, EvalStrategy::TranslatedSparql);
        let b = drive(&store, &c, EvalStrategy::DirectHifun);
        assert_eq!(a, b, "case {case} clicks: {c:?}");
    }
}
