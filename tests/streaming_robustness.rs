//! Streaming-delivery robustness: a client that disconnects mid-query must
//! cancel the evaluation (releasing its admission slot long before the
//! query would finish naturally), and a reader draining a large streamed
//! response too slowly must trip the write timeout without blocking other
//! requests on the server.

use rdf_analytics::server::{percent_encode, Server, ServerConfig};
use rdf_analytics::sparql::EvalLimits;
use rdf_analytics::store::Store;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A store with `n` laptops so cross joins scale as n^2 / n^3.
fn laptops(n: usize) -> Store {
    let mut ttl = String::from("@prefix ex: <http://example.org/> .\n");
    for i in 0..n {
        ttl.push_str(&format!("ex:l{i} a ex:Laptop ; ex:price {} .\n", 500 + i));
    }
    let mut s = Store::new();
    s.load_turtle(&ttl).unwrap();
    s
}

fn get(addr: std::net::SocketAddr, path: &str, accept: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream
        .write_all(
            format!(
                "GET {path} HTTP/1.1\r\nHost: x\r\nAccept: {accept}\r\nConnection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

/// Poll until `in_flight` drains to zero; returns how long it took, or
/// panics after `within`.
fn wait_drained(server: &Server, within: Duration) -> Duration {
    let start = Instant::now();
    while server.in_flight() != 0 {
        assert!(
            start.elapsed() < within,
            "in-flight gauge stuck at {} after {:?}",
            server.in_flight(),
            within
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    start.elapsed()
}

/// The acceptance scenario: a client starts a query whose natural runtime
/// is far beyond the test budget (a triple cross join), then hangs up
/// mid-evaluation. The disconnect watcher must set the query's cancel
/// flag, the evaluation must stop at the next probe, and the admission
/// slot must be released — all observable as `in_flight` returning to 0
/// orders of magnitude sooner than the query could have completed.
#[test]
fn client_disconnect_mid_query_cancels_evaluation_and_releases_slot() {
    let config = ServerConfig {
        workers: 2,
        max_in_flight: 2,
        // a backstop far beyond what cancellation needs, so a regression
        // fails the assertion instead of hanging the suite
        limits: EvalLimits::unlimited().with_deadline(Duration::from_secs(60)),
        ..ServerConfig::default()
    };
    let server = Server::start_with(laptops(400), 0, config).unwrap();
    let addr = server.addr();

    // 400^3 = 64e9 candidate rows: not finishing in any test-sized window
    let q = percent_encode(
        "PREFIX ex: <http://example.org/> SELECT (COUNT(*) AS ?n) WHERE { \
           ?a a ex:Laptop . ?b a ex:Laptop . ?c a ex:Laptop . }",
    );
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!("GET /v1/query?query={q} HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();

    // let the request get admitted and the evaluation start
    let admitted = Instant::now();
    while server.in_flight() == 0 {
        assert!(admitted.elapsed() < Duration::from_secs(5), "query never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(server.in_flight(), 1);

    // hang up mid-evaluation; the watcher peeks EOF within ~25ms and the
    // guard probes the flag within one interval
    drop(stream);
    let took = wait_drained(&server, Duration::from_secs(10));
    println!("cancelled and drained in {took:?}");

    // the worker is free again: a normal query is served promptly
    let resp = get(
        addr,
        &format!(
            "/v1/query?query={}",
            percent_encode(
                "PREFIX ex: <http://example.org/> SELECT (COUNT(?x) AS ?n) WHERE { ?x a ex:Laptop . }"
            )
        ),
        "*/*",
    );
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    server.stop();
}

/// A reader that takes one sip and then stalls must be shed by the
/// per-write timeout while a concurrent client is served normally: slow
/// consumers cost one worker for at most `write_timeout`, not forever.
#[test]
fn slow_reader_trips_write_timeout_without_blocking_others() {
    let config = ServerConfig {
        workers: 2,
        max_in_flight: 4,
        write_timeout: Duration::from_millis(500),
        // small chunks so the stream hits the socket early and often
        stream_chunk_bytes: 512,
        limits: EvalLimits::unlimited().with_deadline(Duration::from_secs(60)),
        ..ServerConfig::default()
    };
    let server = Server::start_with(laptops(300), 0, config).unwrap();
    let addr = server.addr();

    // 300^2 = 90k rows of two IRIs each ≈ several MB of CSV: far beyond
    // what kernel socket buffers can absorb, so the server must block on
    // write — and then trip the timeout
    let q = percent_encode(
        "PREFIX ex: <http://example.org/> SELECT ?a ?b WHERE { \
           ?a a ex:Laptop . ?b a ex:Laptop . }",
    );
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.write_all(
        format!("GET /v1/query?query={q} HTTP/1.1\r\nHost: x\r\nAccept: text/csv\r\nConnection: close\r\n\r\n")
            .as_bytes(),
    )
    .unwrap();
    // read a single byte to prove the response started, then stall
    let mut first = [0u8; 1];
    slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    slow.read_exact(&mut first).unwrap();

    // while the slow reader stalls, other requests are served promptly by
    // the remaining worker
    let t = Instant::now();
    let resp = get(
        addr,
        &format!(
            "/v1/query?query={}",
            percent_encode(
                "PREFIX ex: <http://example.org/> SELECT (COUNT(?x) AS ?n) WHERE { ?x a ex:Laptop . }"
            )
        ),
        "*/*",
    );
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(
        t.elapsed() < Duration::from_secs(5),
        "concurrent request blocked behind the slow reader: {:?}",
        t.elapsed()
    );

    // the stalled response must be aborted by the write timeout and its
    // slot released — without the test ever draining the socket
    let took = wait_drained(&server, Duration::from_secs(15));
    println!("slow reader shed in {took:?}");

    // the server hung up on us: draining what's buffered ends in EOF or a
    // reset, never a complete CSV body
    let mut rest = Vec::new();
    slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let _ = slow.read_to_end(&mut rest);
    let text = String::from_utf8_lossy(&rest);
    assert!(
        !text.ends_with("0\r\n\r\n"),
        "slow reader received a complete chunked body — never shed"
    );
    server.stop();
}

/// Drain shutdown cancels in-flight queries: `stop()` on a server with a
/// long-running evaluation returns promptly because the draining signal
/// trips every watcher.
#[test]
fn drain_shutdown_cancels_in_flight_queries() {
    let config = ServerConfig {
        workers: 2,
        limits: EvalLimits::unlimited().with_deadline(Duration::from_secs(60)),
        ..ServerConfig::default()
    };
    let server = Server::start_with(laptops(400), 0, config).unwrap();
    let addr = server.addr();

    let q = percent_encode(
        "PREFIX ex: <http://example.org/> SELECT (COUNT(*) AS ?n) WHERE { \
           ?a a ex:Laptop . ?b a ex:Laptop . ?c a ex:Laptop . }",
    );
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!("GET /v1/query?query={q} HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
    let started = Instant::now();
    while server.in_flight() == 0 {
        assert!(started.elapsed() < Duration::from_secs(5), "query never started");
        std::thread::sleep(Duration::from_millis(5));
    }

    // stop() sets the draining flag before joining workers; the watcher
    // cancels the evaluation, so shutdown completes in test time rather
    // than waiting out a 64e9-row join
    let t = Instant::now();
    server.stop();
    assert!(
        t.elapsed() < Duration::from_secs(15),
        "drain shutdown blocked behind a running query: {:?}",
        t.elapsed()
    );
    // the cancelled query's connection is closed with an error (or just
    // dropped); either way our read ends
    let mut buf = Vec::new();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = stream.read_to_end(&mut buf);
}
