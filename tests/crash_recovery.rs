//! The crash matrix: for EVERY labeled crash point in the persistence
//! layer, under EVERY fsync policy, a crash mid-write must recover on
//! reopen to a consistent prefix of the committed operations — no panic,
//! no partial record visible, no acknowledged write lost.
//!
//! The scripted workload exercises both write paths: five single-triple
//! inserts, a checkpoint (snapshot + WAL rotation + CURRENT flip), then
//! five more inserts. An operation counts as *acknowledged* only when the
//! API returned `Ok`; recovery may additionally surface at most one
//! unacknowledged operation (a record fully written before the crash label
//! fired), and never anything else.

use rdf_analytics::model::{Term, Triple};
use rdf_analytics::store::{
    CrashInjector, FsyncPolicy, PersistConfig, PersistError, PersistentStore, CRASH_POINTS,
};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rdfa-crash-{}-{}",
        std::process::id(),
        tag.replace(['.', ':'], "-")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn triple(i: usize) -> Triple {
    Triple::new(
        Term::iri(format!("http://crash.test/s{i}")),
        Term::iri("http://crash.test/p"),
        Term::integer(i as i64),
    )
}

fn has_triple(store: &PersistentStore, i: usize) -> bool {
    let t = triple(i);
    match (store.lookup(&t.subject), store.lookup(&t.predicate), store.lookup(&t.object)) {
        (Some(s), Some(p), Some(o)) => {
            store.matching_explicit(Some(s), Some(p), Some(o)).next().is_some()
        }
        _ => false,
    }
}

/// Run the scripted workload until the injected crash stops it; return the
/// number of *acknowledged* operations (insert i is op i, each distinct).
fn run_until_crash(dir: &PathBuf, config: PersistConfig) -> (usize, bool) {
    let mut store = PersistentStore::open(dir, config).expect("initial open never crashes");
    let mut acked = 0usize;
    let mut crashed = false;
    for i in 0..10 {
        match store.insert(&triple(i)) {
            Ok(added) => {
                assert!(added, "scripted triples are distinct");
                acked += 1;
            }
            Err(e) => {
                assert!(
                    matches!(e, PersistError::InjectedCrash { .. }),
                    "only the injector may fail this workload: {e}"
                );
                crashed = true;
                break;
            }
        }
        if i == 4 {
            match store.checkpoint() {
                Ok(_) => {}
                Err(e) => {
                    assert!(
                        matches!(e, PersistError::InjectedCrash { .. }),
                        "only the injector may fail the checkpoint: {e}"
                    );
                    crashed = true;
                    break;
                }
            }
        }
    }
    if crashed {
        // the handle is poisoned, exactly like a dead process
        assert!(store.is_dead(), "crash must poison the handle");
        assert!(matches!(store.insert(&triple(99)), Err(PersistError::Dead)));
    }
    (acked, crashed)
}

/// After reopening, the store must hold the acknowledged prefix — and at
/// most one record beyond it (fully written but unacknowledged).
fn assert_consistent_prefix(store: &PersistentStore, acked: usize, label: &str, policy: &str) {
    let n = store.len();
    assert!(
        n == acked || n == acked + 1,
        "[{label} / {policy}] recovered {n} triples, acknowledged {acked}: \
         not a consistent prefix"
    );
    for i in 0..n {
        assert!(
            has_triple(store, i),
            "[{label} / {policy}] recovered store is missing op {i} of its {n}-op prefix"
        );
    }
    // nothing beyond the prefix leaked in
    assert!(
        !has_triple(store, n),
        "[{label} / {policy}] phantom operation {n} visible after recovery"
    );
}

#[test]
fn every_crash_point_recovers_under_every_fsync_policy() {
    let policies = [
        ("always", FsyncPolicy::Always),
        ("every-2", FsyncPolicy::EveryN(2)),
        ("never", FsyncPolicy::Never),
    ];
    for &label in CRASH_POINTS {
        for (pname, policy) in policies {
            let dir = tmpdir(&format!("{label}-{pname}"));
            let config =
                PersistConfig { fsync: policy, crash: CrashInjector::at(label, 1) };
            let (acked, crashed) = run_until_crash(&dir, config);
            assert!(
                crashed,
                "[{label} / {pname}] the workload never reached this crash point"
            );
            // recovery: must succeed, must not panic, must see a prefix
            let store = PersistentStore::open(&dir, PersistConfig::default())
                .unwrap_or_else(|e| panic!("[{label} / {pname}] recovery failed: {e}"));
            assert_consistent_prefix(&store, acked, label, pname);
            // and the recovered store is fully usable again
            drop(store);
            let mut store = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
            let next = store.len();
            store.insert(&triple(next)).expect("recovered store accepts writes");
            store.checkpoint().expect("recovered store checkpoints");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn repeated_crashes_still_converge() {
    // crash → recover → crash at a later point → recover: each recovery
    // lands on a consistent prefix and the store keeps making progress
    let dir = tmpdir("repeat");
    let (acked1, crashed) = run_until_crash(
        &dir,
        PersistConfig { fsync: FsyncPolicy::Always, crash: CrashInjector::at("wal.append.torn-body", 2) },
    );
    assert!(crashed);
    {
        let store = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
        assert_consistent_prefix(&store, acked1, "wal.append.torn-body:2", "always");
    }
    // second life: crash during the checkpoint this time
    let mut store = PersistentStore::open(
        &dir,
        PersistConfig { fsync: FsyncPolicy::Always, crash: CrashInjector::at("checkpoint.current", 1) },
    )
    .unwrap();
    let base = store.len();
    store.insert(&triple(100)).unwrap();
    assert!(matches!(
        store.checkpoint(),
        Err(PersistError::InjectedCrash { point: "checkpoint.current" })
    ));
    drop(store);
    let store = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
    assert_eq!(store.len(), base + 1, "insert before the failed checkpoint survives");
}

#[test]
fn flipped_snapshot_byte_is_detected_by_checksum() {
    let dir = tmpdir("snapshot-corruption");
    {
        let mut store = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
        for i in 0..30 {
            store.insert(&triple(i)).unwrap();
        }
        store.checkpoint().unwrap();
    }
    let snap = dir.join("snapshot.1.bin");
    let clean = std::fs::read(&snap).unwrap();
    // flip one byte at several depths; every flip must surface as a typed
    // error (checksum for payload bytes, magic/corrupt for header bytes)
    for pos in [0, 8, 20, clean.len() / 2, clean.len() - 1] {
        let mut bytes = clean.clone();
        bytes[pos] ^= 0x20;
        std::fs::write(&snap, &bytes).unwrap();
        match PersistentStore::open(&dir, PersistConfig::default()) {
            Err(
                PersistError::Checksum { .. }
                | PersistError::BadMagic { .. }
                | PersistError::UnsupportedVersion { .. }
                | PersistError::Corrupt { .. },
            ) => {}
            Err(other) => panic!("flip at {pos}: wrong error class: {other}"),
            Ok(s) => panic!("flip at {pos}: corruption not detected ({} triples)", s.len()),
        }
    }
    std::fs::write(&snap, &clean).unwrap();
    let store = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
    assert_eq!(store.len(), 30);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_wal_byte_truncates_to_committed_prefix() {
    let dir = tmpdir("wal-corruption");
    {
        let mut store = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
        for i in 0..12 {
            store.insert(&triple(i)).unwrap();
        }
    }
    let wal = dir.join("wal.0.log");
    let bytes = std::fs::read(&wal).unwrap();
    let mut corrupted = bytes.clone();
    let target = bytes.len() * 2 / 3;
    corrupted[target] ^= 0x01;
    std::fs::write(&wal, &corrupted).unwrap();
    let store = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
    let report = store.recovery();
    let truncation = report.wal_truncation.clone().expect("corruption must be reported");
    assert!(truncation.offset < bytes.len() as u64);
    let n = report.wal_records_replayed as usize;
    assert!(n < 12, "corrupted record must not replay");
    assert_consistent_prefix(&store, n, "flipped-wal-byte", "always");
    // the log was physically truncated: a fresh append goes to a clean
    // boundary and survives the next reopen
    drop(store);
    let mut store = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
    let n = store.len();
    store.insert(&triple(n)).unwrap();
    drop(store);
    let store = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
    assert_eq!(store.len(), n + 1);
    assert!(store.recovery().wal_truncation.is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_crash_sampling_soak() {
    // randomized (but deterministic) soak: under sampled crash injection
    // with many seeds, every recovery lands on a consistent prefix
    for seed in 0..24u64 {
        let dir = tmpdir(&format!("soak-{seed}"));
        let mut acked = 0usize;
        {
            let config = PersistConfig {
                fsync: FsyncPolicy::EveryN(3),
                crash: CrashInjector::sampled(seed, 0.04),
            };
            let mut store = PersistentStore::open(&dir, config).unwrap();
            for i in 0..40 {
                match store.insert(&triple(i)) {
                    Ok(_) => acked += 1,
                    Err(_) => break,
                }
                if i % 8 == 7 && store.checkpoint().is_err() {
                    break;
                }
            }
        }
        let store = PersistentStore::open(&dir, PersistConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
        assert_consistent_prefix(&store, acked, "sampled", &format!("seed-{seed}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
