//! Property test: the store's single-pass RDFS closure equals a naive
//! rule-based fixpoint on random schema + data graphs.
//!
//! The naive evaluator applies the RDFS rules (5, 7, 9, 11, 2, 3) repeatedly
//! until nothing changes — obviously correct, hopelessly slow; the store's
//! closure must produce exactly the same triple set.

use rdf_analytics::model::{vocab, Term, Triple};
use rdf_analytics::store::Store;
use rdfa_prng::StdRng;
use std::collections::BTreeSet;

const EX: &str = "http://fx/";

#[derive(Debug, Clone)]
struct RandKg {
    /// subClassOf edges between classes c0..c4
    subclass: Vec<(u8, u8)>,
    /// subPropertyOf edges between properties p0..p3
    subprop: Vec<(u8, u8)>,
    /// domain/range declarations: (property, class, is_domain)
    domran: Vec<(u8, u8, bool)>,
    /// type assertions: (individual, class)
    types: Vec<(u8, u8)>,
    /// data triples: (subject ind, property, object ind)
    data: Vec<(u8, u8, u8)>,
}

fn rand_kg(rng: &mut StdRng) -> RandKg {
    let subclass = (0..rng.gen_range(0..6))
        .map(|_| (rng.gen_range(0u8..5), rng.gen_range(0u8..5)))
        .collect();
    let subprop = (0..rng.gen_range(0..4))
        .map(|_| (rng.gen_range(0u8..4), rng.gen_range(0u8..4)))
        .collect();
    let domran = (0..rng.gen_range(0..4))
        .map(|_| (rng.gen_range(0u8..4), rng.gen_range(0u8..5), rng.gen_bool(0.5)))
        .collect();
    let types = (0..rng.gen_range(0..8))
        .map(|_| (rng.gen_range(0u8..6), rng.gen_range(0u8..5)))
        .collect();
    let data = (0..rng.gen_range(0..10))
        .map(|_| (rng.gen_range(0u8..6), rng.gen_range(0u8..4), rng.gen_range(0u8..6)))
        .collect();
    RandKg { subclass, subprop, domran, types, data }
}

fn cls(i: u8) -> Term {
    Term::iri(format!("{EX}C{i}"))
}
fn prop(i: u8) -> Term {
    Term::iri(format!("{EX}p{i}"))
}
fn ind(i: u8) -> Term {
    Term::iri(format!("{EX}x{i}"))
}

fn explicit_triples(kg: &RandKg) -> BTreeSet<Triple> {
    let mut out = BTreeSet::new();
    for &(a, b) in &kg.subclass {
        out.insert(Triple::new(cls(a), Term::iri(vocab::rdfs::SUB_CLASS_OF), cls(b)));
    }
    for &(a, b) in &kg.subprop {
        out.insert(Triple::new(prop(a), Term::iri(vocab::rdfs::SUB_PROPERTY_OF), prop(b)));
    }
    for &(p, c, is_dom) in &kg.domran {
        let pred = if is_dom { vocab::rdfs::DOMAIN } else { vocab::rdfs::RANGE };
        out.insert(Triple::new(prop(p), Term::iri(pred), cls(c)));
    }
    for &(x, c) in &kg.types {
        out.insert(Triple::new(ind(x), Term::iri(vocab::rdf::TYPE), cls(c)));
    }
    for &(s, p, o) in &kg.data {
        out.insert(Triple::new(ind(s), prop(p), ind(o)));
    }
    out
}

/// Naive fixpoint over the RDFS rules the store implements.
fn naive_closure(explicit: &BTreeSet<Triple>) -> BTreeSet<Triple> {
    let t_type = Term::iri(vocab::rdf::TYPE);
    let t_sub = Term::iri(vocab::rdfs::SUB_CLASS_OF);
    let t_subp = Term::iri(vocab::rdfs::SUB_PROPERTY_OF);
    let t_dom = Term::iri(vocab::rdfs::DOMAIN);
    let t_ran = Term::iri(vocab::rdfs::RANGE);
    let mut all = explicit.clone();
    loop {
        let mut new: Vec<Triple> = Vec::new();
        let snapshot: Vec<Triple> = all.iter().cloned().collect();
        for a in &snapshot {
            for b in &snapshot {
                // rdfs11: subClassOf transitivity (irreflexive conclusions kept)
                if a.predicate == t_sub && b.predicate == t_sub && a.object == b.subject {
                    new.push(Triple::new(a.subject.clone(), t_sub.clone(), b.object.clone()));
                }
                // rdfs5: subPropertyOf transitivity
                if a.predicate == t_subp && b.predicate == t_subp && a.object == b.subject {
                    new.push(Triple::new(a.subject.clone(), t_subp.clone(), b.object.clone()));
                }
                // rdfs9: type propagation
                if a.predicate == t_type && b.predicate == t_sub && a.object == b.subject {
                    new.push(Triple::new(a.subject.clone(), t_type.clone(), b.object.clone()));
                }
                // rdfs7: property inheritance (only for data predicates)
                if b.predicate == t_subp
                    && a.predicate == b.subject
                    && a.predicate != t_type
                    && a.predicate != t_sub
                    && a.predicate != t_subp
                    && a.predicate != t_dom
                    && a.predicate != t_ran
                {
                    new.push(Triple::new(a.subject.clone(), b.object.clone(), a.object.clone()));
                }
                // rdfs2: domain typing
                if b.predicate == t_dom && a.predicate == b.subject {
                    new.push(Triple::new(a.subject.clone(), t_type.clone(), b.object.clone()));
                }
                // rdfs3: range typing
                if b.predicate == t_ran && a.predicate == b.subject {
                    new.push(Triple::new(a.object.clone(), t_type.clone(), b.object.clone()));
                }
            }
        }
        // the store's closure keeps subsumption conclusions irreflexive
        // (x ⊑ x adds nothing); mirror that
        new.retain(|t| {
            !((t.predicate == t_sub || t.predicate == t_subp) && t.subject == t.object)
        });
        let before = all.len();
        all.extend(new);
        if all.len() == before {
            return all;
        }
    }
}

#[test]
fn store_closure_equals_naive_fixpoint() {
    for case in 0u64..48 {
        let kg = rand_kg(&mut StdRng::seed_from_u64(case));
        let explicit = explicit_triples(&kg);
        let mut store = Store::new();
        for t in &explicit {
            store.insert(t);
        }
        store.materialize_inference();
        let via_store: BTreeSet<Triple> = store
            .matching(None, None, None)
            .map(|[s, p, o]| {
                Triple::new(store.term(s).clone(), store.term(p).clone(), store.term(o).clone())
            })
            .collect();
        let via_fixpoint = naive_closure(&explicit);
        let missing: Vec<_> = via_fixpoint.difference(&via_store).collect();
        let extra: Vec<_> = via_store.difference(&via_fixpoint).collect();
        assert!(
            missing.is_empty() && extra.is_empty(),
            "case {case}: missing from store: {missing:#?}\nextra in store: {extra:#?}"
        );
    }
}
