//! Differential harness: the ID-space batched engine must agree with the
//! term-space evaluator on every query, at every thread count, including
//! when resource limits trip. Queries come from a fixed corpus covering the
//! operator surface (aggregates, OPTIONAL, UNION, FILTER, BIND, VALUES,
//! DISTINCT, ORDER BY) plus seeded random BGP+aggregate combinations, so a
//! divergence in any operator's semantics shows up as a row-set mismatch.

use rdf_analytics::datagen::{ProductsGenerator, EX};
use rdf_analytics::sparql::{Engine, EvalLimits, ExecMode, SparqlError};
use rdf_analytics::store::Store;
use rdfa_prng::StdRng;

fn store() -> Store {
    let mut s = Store::new();
    s.load_graph(&ProductsGenerator::new(120, 42).generate());
    s
}

/// Order-insensitive canonical form: every cell rendered fully, rows sorted.
/// The engines must agree up to row permutation (ORDER BY ties are
/// unordered between implementations, and parallel grouping is only
/// guaranteed to be a permutation of the sequential result).
fn canon(sols: &rdf_analytics::sparql::Solutions) -> Vec<Vec<Option<String>>> {
    let mut rows: Vec<Vec<Option<String>>> = sols
        .rows()
        .iter()
        .map(|r| r.iter().map(|c| c.as_ref().map(|t| format!("{t:?}"))).collect())
        .collect();
    rows.sort();
    rows
}

/// Run one query under the three configurations and demand agreement.
fn check(s: &Store, q: &str, ctx: &str) {
    let term = Engine::builder(s)
        .execution(ExecMode::TermSpace)
        .build()
        .run(q)
        .unwrap_or_else(|e| panic!("term-space failed ({ctx}): {e}\n{q}"))
        .into_solutions()
        .unwrap();
    for threads in [1usize, 4] {
        let id = Engine::builder(s)
            .threads(threads)
            .build()
            .run(q)
            .unwrap_or_else(|e| panic!("id-space({threads} threads) failed ({ctx}): {e}\n{q}"))
            .into_solutions()
            .unwrap();
        assert_eq!(term.vars(), id.vars(), "{ctx}: var mismatch\n{q}");
        assert_eq!(
            canon(&term),
            canon(&id),
            "{ctx}: id-space with {threads} thread(s) diverged\n{q}"
        );
    }
}

const CORPUS: &[&str] = &[
    // plain BGP + ORDER BY
    "SELECT ?x ?p WHERE { ?x a ex:Laptop ; ex:price ?p . } ORDER BY ?p ?x",
    // FILTER with arithmetic
    "SELECT ?x WHERE { ?x ex:price ?p . FILTER(?p > 1000 && ?p < 2500) }",
    // aggregates over the whole solution
    "SELECT (COUNT(?x) AS ?n) (SUM(?p) AS ?s) (AVG(?p) AS ?a) (MIN(?p) AS ?lo) (MAX(?p) AS ?hi) \
     WHERE { ?x a ex:Laptop ; ex:price ?p . }",
    // GROUP BY with multiple aggregates
    "SELECT ?m (COUNT(?x) AS ?n) (AVG(?p) AS ?avg) WHERE { \
       ?x ex:manufacturer ?m ; ex:price ?p . } GROUP BY ?m",
    // GROUP BY two keys
    "SELECT ?m ?u (COUNT(?x) AS ?n) WHERE { \
       ?x ex:manufacturer ?m ; ex:USBPorts ?u . } GROUP BY ?m ?u",
    // COUNT DISTINCT and COUNT(*)
    "SELECT ?m (COUNT(DISTINCT ?u) AS ?du) (COUNT(*) AS ?all) WHERE { \
       ?x ex:manufacturer ?m ; ex:USBPorts ?u . } GROUP BY ?m",
    // HAVING
    "SELECT ?m (COUNT(?x) AS ?n) WHERE { ?x ex:manufacturer ?m . } \
     GROUP BY ?m HAVING (COUNT(?x) >= 3)",
    // GROUP_CONCAT and SAMPLE are order-sensitive; pin with MIN instead
    "SELECT ?m (MIN(?p) AS ?cheapest) WHERE { \
       ?x ex:manufacturer ?m ; ex:price ?p . } GROUP BY ?m ORDER BY ?cheapest",
    // OPTIONAL, bound and unbound branches
    "SELECT ?x ?f WHERE { ?x a ex:Company . OPTIONAL { ?x ex:founder ?f . } }",
    // OPTIONAL + FILTER inside
    "SELECT ?x ?g WHERE { ?x ex:origin ?c . OPTIONAL { ?c ex:GDPPerCapita ?g . FILTER(?g > 30000) } }",
    // UNION
    "SELECT ?x WHERE { { ?x a ex:Laptop . } UNION { ?x a ex:Company . } }",
    // UNION with disjoint variables
    "SELECT ?a ?b WHERE { { ?a a ex:Company . } UNION { ?b a ex:Continent . } }",
    // BIND + expression grouping
    "SELECT ?bucket (COUNT(?x) AS ?n) WHERE { \
       ?x ex:price ?p . BIND(IF(?p >= 1500, \"high\", \"low\") AS ?bucket) } GROUP BY ?bucket",
    // VALUES restriction
    "SELECT ?x ?u WHERE { VALUES ?u { 2 3 } ?x ex:USBPorts ?u . }",
    // DISTINCT projection
    "SELECT DISTINCT ?u WHERE { ?x ex:USBPorts ?u . }",
    // expression over aggregates (the paper's per-capita idiom)
    "SELECT ?m ((SUM(?p) / COUNT(?x)) AS ?mean) WHERE { \
       ?x ex:manufacturer ?m ; ex:price ?p . } GROUP BY ?m",
    // LIMIT/OFFSET after ORDER BY on a deterministic total order
    "SELECT ?x WHERE { ?x a ex:Laptop . } ORDER BY ?x LIMIT 7 OFFSET 3",
    // GROUP BY on a join chain (two hops)
    "SELECT ?cont (COUNT(?x) AS ?n) WHERE { \
       ?x ex:manufacturer ?m . ?m ex:origin ?c . ?c ex:locatedAt ?cont . } GROUP BY ?cont",
];

#[test]
fn corpus_queries_agree_across_engines_and_threads() {
    let s = store();
    for (i, q) in CORPUS.iter().enumerate() {
        let q = format!("PREFIX ex: <{EX}> {q}");
        check(&s, &q, &format!("corpus[{i}]"));
    }
}

/// Seeded random GROUP BY queries: random grouping key, random aggregate,
/// random filter threshold. Shapes the harness can't enumerate by hand.
#[test]
fn random_aggregate_queries_agree() {
    let s = store();
    let mut rng = StdRng::seed_from_u64(7);
    let keys = ["manufacturer", "USBPorts", "hardDrive"];
    let aggs = ["COUNT(?x)", "SUM(?p)", "AVG(?p)", "MIN(?p)", "MAX(?p)", "COUNT(DISTINCT ?p)"];
    for case in 0..40 {
        let key = keys[rng.gen_range(0..keys.len() as u32) as usize];
        let agg = aggs[rng.gen_range(0..aggs.len() as u32) as usize];
        let lo = rng.gen_range(300..2000u32);
        let distinct = if rng.gen_bool(0.3) { "DISTINCT " } else { "" };
        let q = format!(
            "PREFIX ex: <{EX}> SELECT {distinct}?k ({agg} AS ?v) WHERE {{ \
               ?x ex:{key} ?k ; ex:price ?p . FILTER(?p >= {lo}) }} GROUP BY ?k"
        );
        check(&s, &q, &format!("random[{case}]"));
    }
}

/// Random plain BGP selections with OPTIONAL/UNION decoration.
#[test]
fn random_pattern_queries_agree() {
    let s = store();
    let mut rng = StdRng::seed_from_u64(13);
    for case in 0..30 {
        let with_opt = rng.gen_bool(0.5);
        let with_union = rng.gen_bool(0.4);
        let max_ports = rng.gen_range(1..5u32);
        let mut body = format!("?x a ex:Laptop ; ex:USBPorts ?u . FILTER(?u <= {max_ports})");
        if with_opt {
            body.push_str(" OPTIONAL { ?x ex:manufacturer ?m . ?m ex:founder ?f . }");
        }
        if with_union {
            body = format!("{{ {body} }} UNION {{ ?x a ex:Company . }}");
        }
        let q = format!("PREFIX ex: <{EX}> SELECT * WHERE {{ {body} }}");
        check(&s, &q, &format!("pattern[{case}]"));
    }
}

/// When a resource limit trips, both engines must surface the SAME
/// structured error — the limit kind and configured ceiling, not just "some
/// error". (Exact trip *points* may differ; the surfaced variant may not.)
#[test]
fn tripped_limits_agree_across_engines() {
    let s = store();
    let q = format!(
        "PREFIX ex: <{EX}> SELECT ?m (COUNT(?x) AS ?n) WHERE {{ \
           ?x ex:manufacturer ?m ; ex:price ?p . }} GROUP BY ?m"
    );
    let trip = |mode: ExecMode, limits: EvalLimits| -> SparqlError {
        Engine::builder(&s)
            .execution(mode)
            .limits(limits)
            .build()
            .run(&q)
            .expect_err("limit should trip")
    };
    for limits in [
        EvalLimits::unlimited().with_max_rows(5),
        EvalLimits::unlimited().with_deadline(std::time::Duration::ZERO),
    ] {
        let a = trip(ExecMode::TermSpace, limits.clone());
        let b = trip(ExecMode::IdSpace, limits);
        assert!(a.is_resource_limit() && b.is_resource_limit(), "{a:?} vs {b:?}");
        assert_eq!(a, b, "engines surfaced different limit errors");
    }
}

/// A query under a limit that does NOT trip must return full results in
/// both engines — the guard must not distort row sets.
#[test]
fn generous_limits_do_not_distort_results() {
    let s = store();
    let q = format!(
        "PREFIX ex: <{EX}> SELECT ?m (COUNT(?x) AS ?n) WHERE {{ \
           ?x ex:manufacturer ?m . }} GROUP BY ?m"
    );
    let run = |mode: ExecMode| {
        Engine::builder(&s)
            .execution(mode)
            .limits(EvalLimits::interactive())
            .build()
            .run(&q)
            .unwrap()
            .into_solutions()
            .unwrap()
    };
    let a = run(ExecMode::TermSpace);
    let b = run(ExecMode::IdSpace);
    assert_eq!(canon(&a), canon(&b));
    assert!(!a.is_empty());
}

/// The prepared-query API reports a plan and per-operator cardinalities for
/// ID-space corpus queries (the acceptance bar for `explain()`).
#[test]
fn explain_reports_operator_cardinalities() {
    let s = store();
    let q = format!(
        "PREFIX ex: <{EX}> SELECT ?m (COUNT(?x) AS ?n) WHERE {{ \
           ?x ex:manufacturer ?m ; ex:price ?p . }} GROUP BY ?m"
    );
    let engine = Engine::builder(&s).build();
    let prepared = engine.prepare(&q).unwrap();
    assert!(prepared.uses_id_space());
    prepared.execute().unwrap();
    let stats = prepared.last_stats().unwrap();
    assert!(stats.rows_out > 0);
    assert!(stats.operators.iter().any(|op| op.rows_out > 0));
    let text = prepared.explain();
    assert!(text.contains("physical plan:"), "{text}");
    assert!(text.contains("rows="), "{text}");
}
