//! End-to-end snapshot-isolation and overload tests against the HTTP
//! server: readers keep completing (and never observe torn state) while
//! bulk updates, writer panics, and checkpoints happen underneath them.

use rdf_analytics::model::{Term, Triple};
use rdf_analytics::server::{percent_encode, Server, ServerConfig};
use rdf_analytics::store::{PersistConfig, PersistentStore, Store};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn http(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

// the helpers read until the server closes the socket, so they opt out of
// keep-alive explicitly
fn get(addr: std::net::SocketAddr, path: &str) -> String {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: x\r\nAccept: */*\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn demo_store() -> Store {
    let mut s = Store::new();
    s.load_turtle(
        r#"@prefix ex: <http://example.org/> .
           ex:l1 a ex:Laptop ; ex:price 900 .
           ex:l2 a ex:Laptop ; ex:price 1000 .
        "#,
    )
    .unwrap();
    s
}

fn count_query() -> String {
    percent_encode(
        "PREFIX ex: <http://example.org/> SELECT (COUNT(?x) AS ?n) WHERE { ?x a ex:Laptop . }",
    )
}

/// Pull the single COUNT value out of a SPARQL JSON results response.
fn parse_count(resp: &str) -> Option<u64> {
    let idx = resp.find("\"value\":\"")? + "\"value\":\"".len();
    let rest = &resp[idx..];
    let end = rest.find('"')?;
    rest[..end].parse().ok()
}

/// The acceptance criterion: readers complete queries — with correct,
/// un-torn results — while a 2000-triple bulk update is applied. Every
/// observed count is either the pre-update or the post-update state;
/// nothing in between is ever visible.
#[test]
fn readers_complete_queries_during_bulk_update() {
    let server = Server::start(demo_store(), 0).unwrap();
    let addr = server.addr();
    let q = count_query();
    let done = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..4 {
            let done = Arc::clone(&done);
            let reads = Arc::clone(&reads);
            let q = q.clone();
            readers.push(scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let resp = get(addr, &format!("/v1/query?query={q}"));
                    assert!(resp.starts_with("HTTP/1.1 200"), "reader failed: {resp}");
                    let n = parse_count(&resp).expect("count in response");
                    assert!(
                        n == 2 || n == 2002,
                        "torn read: saw {n} laptops mid-update"
                    );
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        // one bulk update inserting 2000 laptops as a single batch
        let mut body =
            String::from("PREFIX ex: <http://example.org/> INSERT DATA {\n");
        for i in 0..2000 {
            body.push_str(&format!("ex:bulk{i} a ex:Laptop .\n"));
        }
        body.push('}');
        let resp = post(addr, "/v1/update", &body);
        assert!(resp.contains("\"inserted\":2000"), "{resp}");
        // let the readers observe the post-update world too
        std::thread::sleep(Duration::from_millis(100));
        done.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    });
    assert!(reads.load(Ordering::Relaxed) > 0, "readers never ran");
    let resp = get(addr, &format!("/v1/query?query={q}"));
    assert_eq!(parse_count(&resp), Some(2002));
}

/// N readers × 1 writer over HTTP: the writer inserts laptops two at a
/// time, so every published generation holds an even count — any odd
/// count is a torn read.
#[test]
fn no_torn_reads_under_continuous_write_pressure() {
    let server = Server::start(demo_store(), 0).unwrap();
    let addr = server.addr();
    let q = count_query();
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..3 {
            let done = Arc::clone(&done);
            let q = q.clone();
            readers.push(scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let resp = get(addr, &format!("/v1/query?query={q}"));
                    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
                    let n = parse_count(&resp).expect("count in response");
                    assert_eq!(n % 2, 0, "torn read: odd laptop count {n}");
                }
            }));
        }
        for i in 0..40 {
            let body = format!(
                "PREFIX ex: <http://example.org/> INSERT DATA {{ ex:p{i}a a ex:Laptop . ex:p{i}b a ex:Laptop . }}"
            );
            let resp = post(addr, "/v1/update", &body);
            assert!(resp.contains("\"inserted\":2"), "{resp}");
        }
        done.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    });
    let resp = get(addr, &format!("/v1/query?query={q}"));
    assert_eq!(parse_count(&resp), Some(2 + 80));
}

/// A writer that panics mid-batch inside the server's own store publishes
/// nothing, poisons nothing: HTTP readers keep answering from the last
/// generation and the next HTTP update succeeds.
#[test]
fn writer_panic_leaves_server_readers_unaffected() {
    let server = Server::start(demo_store(), 0).unwrap();
    let addr = server.addr();
    let shared = Arc::clone(server.shared());

    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut txn = shared.store().begin_write();
        txn.store_mut().insert(&Triple::new(
            Term::iri("http://example.org/doomed"),
            Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
            Term::iri("http://example.org/Laptop"),
        ));
        panic!("writer dies mid-batch");
    }));
    assert!(panicked.is_err());

    // readers still see the pre-panic state — the doomed insert is gone
    let q = count_query();
    let resp = get(addr, &format!("/v1/query?query={q}"));
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert_eq!(parse_count(&resp), Some(2));

    // and the next writer proceeds normally: no poisoned lock anywhere
    let resp = post(
        addr,
        "/v1/update",
        "PREFIX ex: <http://example.org/> INSERT DATA { ex:l3 a ex:Laptop . }",
    );
    assert!(resp.contains("\"inserted\":1"), "{resp}");
    let resp = get(addr, &format!("/v1/query?query={q}"));
    assert_eq!(parse_count(&resp), Some(3));
}

/// Durable flavour: readers and updates proceed while checkpoints run
/// concurrently, and a restart recovers exactly the acknowledged state —
/// the checkpoint/update race is closed by capturing the snapshot under
/// the journal lock.
#[test]
fn durable_reads_updates_and_checkpoints_interleave_safely() {
    let dir = std::env::temp_dir().join(format!(
        "rdfa-snapshot-isolation-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut pstore = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
        pstore
            .load_turtle(
                r#"@prefix ex: <http://example.org/> .
                   ex:l1 a ex:Laptop . ex:l2 a ex:Laptop ."#,
            )
            .unwrap();
        let server = Server::start_durable(pstore, 0, ServerConfig::default()).unwrap();
        let addr = server.addr();
        let q = count_query();
        let done = Arc::new(AtomicBool::new(false));

        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for _ in 0..2 {
                let done = Arc::clone(&done);
                let q = q.clone();
                readers.push(scope.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        let resp = get(addr, &format!("/v1/query?query={q}"));
                        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
                        let n = parse_count(&resp).expect("count");
                        assert_eq!(n % 2, 0, "torn read on durable path: {n}");
                    }
                }));
            }
            for i in 0..10 {
                let body = format!(
                    "PREFIX ex: <http://example.org/> INSERT DATA {{ ex:d{i}a a ex:Laptop . ex:d{i}b a ex:Laptop . }}"
                );
                let resp = post(addr, "/v1/update", &body);
                assert!(resp.contains("\"inserted\":2"), "{resp}");
                // checkpoint concurrently with serving — readers proceed,
                // and no acknowledged batch may be lost
                if i % 3 == 2 {
                    server.checkpoint().expect("live checkpoint").expect("durable");
                }
            }
            done.store(true, Ordering::Relaxed);
            for r in readers {
                r.join().unwrap();
            }
        });
        let resp = get(addr, &format!("/v1/query?query={q}"));
        assert_eq!(parse_count(&resp), Some(2 + 20));
        server.stop();
    }
    // restart: every acknowledged update survives checkpoints + WAL replay
    let pstore = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
    assert_eq!(pstore.len(), 22);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Saturation sheds instead of cascading: with a tiny in-flight budget,
/// a burst of slow requests yields some `503 Retry-After` answers, the
/// shed counter moves, and the server serves normally afterwards.
#[test]
fn saturation_sheds_and_recovers() {
    let config = ServerConfig {
        workers: 4,
        max_in_flight: 1,
        debug_routes: true,
        ..ServerConfig::default()
    };
    let server = Server::start_with(demo_store(), 0, config).unwrap();
    let addr = server.addr();

    let outcomes: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(move || get(addr, "/slow?ms=400")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok = outcomes.iter().filter(|r| r.starts_with("HTTP/1.1 200")).count();
    let shed = outcomes.iter().filter(|r| r.starts_with("HTTP/1.1 503")).count();
    assert_eq!(ok + shed, 4, "{outcomes:?}");
    assert!(ok >= 1, "at least one request must be served: {outcomes:?}");
    assert!(shed >= 1, "a 1-slot budget must shed a 4-burst: {outcomes:?}");
    for r in outcomes.iter().filter(|r| r.starts_with("HTTP/1.1 503")) {
        assert!(r.contains("Retry-After: "), "{r}");
    }
    assert_eq!(server.shed_requests() as usize, shed);

    // after the burst drains, normal service resumes and healthz shows it
    let q = count_query();
    let resp = get(addr, &format!("/v1/query?query={q}"));
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    let hz = get(addr, "/healthz");
    assert!(hz.contains(&format!("\"shed\":{shed}")), "{hz}");
    assert!(hz.contains("\"in_flight\":0"), "{hz}");
}
