//! Differential property tests for the merge-join facet path (§5.3–5.5):
//! the sorted-dense `ExtSet` and every algebra operation built on it must
//! agree, byte for byte, with the seed's `BTreeSet` implementations on
//! randomly generated graphs — and the generation-keyed `FacetCache` must
//! recompute after any SPARQL update mutates the store.

use rdf_analytics::facets::markers::{self, FacetOptions};
use rdf_analytics::facets::{ops, ExtSet, FacetCache, PathStep};
use rdf_analytics::sparql::execute_update;
use rdf_analytics::store::{Store, TermId};
use rdfa_prng::StdRng;
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// random inputs
// ---------------------------------------------------------------------------

/// A random id set with duplicates and wild spread, as both representations.
fn random_ids(rng: &mut StdRng, max_len: usize, max_id: u32) -> (ExtSet, BTreeSet<TermId>) {
    let len = rng.gen_range(0..max_len);
    let oracle: BTreeSet<TermId> =
        (0..len).map(|_| TermId(rng.gen_range(0u32..max_id))).collect();
    (ExtSet::from(&oracle), oracle)
}

/// A random RDF graph: a small class hierarchy, entities typed into random
/// classes, and a handful of object/data properties with random (possibly
/// multi-valued) edges. Exercises fan-out, fan-in, and shared values.
fn random_store(rng: &mut StdRng) -> Store {
    let n_classes = rng.gen_range(2usize..6);
    let n_entities = rng.gen_range(10usize..60);
    let n_props = rng.gen_range(2usize..5);
    let n_values = rng.gen_range(3usize..10);
    let mut ttl = String::from("@prefix ex: <http://e/> .\n@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n");
    // a chance of subclass edges between consecutive classes
    for c in 1..n_classes {
        if rng.gen_bool(0.5) {
            ttl.push_str(&format!("ex:C{c} rdfs:subClassOf ex:C{} .\n", rng.gen_range(0..c)));
        }
    }
    for e in 0..n_entities {
        let c = rng.gen_range(0..n_classes);
        ttl.push_str(&format!("ex:e{e} a ex:C{c} .\n"));
        for p in 0..n_props {
            // 0–2 edges per property per entity: absent, functional, multi-valued
            for _ in 0..rng.gen_range(0usize..3) {
                if rng.gen_bool(0.5) {
                    ttl.push_str(&format!(
                        "ex:e{e} ex:p{p} ex:v{} .\n",
                        rng.gen_range(0..n_values)
                    ));
                } else {
                    // entity-to-entity edges give the inverse direction teeth
                    ttl.push_str(&format!(
                        "ex:e{e} ex:p{p} ex:e{} .\n",
                        rng.gen_range(0..n_entities)
                    ));
                }
            }
        }
    }
    let mut store = Store::new();
    store.load_turtle(&ttl).expect("generated turtle parses");
    store
}

/// A random extension drawn from the store's subjects.
fn random_ext(rng: &mut StdRng, store: &Store) -> (ExtSet, BTreeSet<TermId>) {
    let subjects: Vec<TermId> = {
        let all: BTreeSet<TermId> = store.iter_explicit().map(|[s, _, _]| s).collect();
        all.into_iter().collect()
    };
    let oracle: BTreeSet<TermId> = subjects
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.6))
        .collect();
    (ExtSet::from(&oracle), oracle)
}

fn props_of(store: &Store) -> Vec<TermId> {
    (0..4).filter_map(|p| store.lookup_iri(&format!("http://e/p{p}"))).collect()
}

// ---------------------------------------------------------------------------
// 1. ExtSet vs the BTreeSet oracle
// ---------------------------------------------------------------------------

#[test]
fn extset_ops_match_btreeset_oracle() {
    for case in 0u64..200 {
        let mut rng = StdRng::seed_from_u64(case);
        // small ids force the dense/bitmap representation into play after
        // densify; large ids keep the sorted representation
        let max_id = if case % 2 == 0 { 64 } else { 100_000 };
        let (a, oa) = random_ids(&mut rng, 80, max_id);
        let (b, ob) = random_ids(&mut rng, 80, max_id);
        // optionally densify one side so mixed-representation paths run
        let mut a = a;
        if case % 3 == 0 {
            a.densify(max_id as usize);
        }

        assert_eq!(a.len(), oa.len(), "case {case}: len");
        assert_eq!(a.to_btree_set(), oa, "case {case}: roundtrip");
        assert_eq!(
            a.intersect(&b).to_btree_set(),
            oa.intersection(&ob).copied().collect::<BTreeSet<_>>(),
            "case {case}: intersect"
        );
        assert_eq!(
            a.union(&b).to_btree_set(),
            oa.union(&ob).copied().collect::<BTreeSet<_>>(),
            "case {case}: union"
        );
        assert_eq!(
            a.difference(&b).to_btree_set(),
            oa.difference(&ob).copied().collect::<BTreeSet<_>>(),
            "case {case}: difference"
        );
        assert_eq!(a.is_subset(&b), oa.is_subset(&ob), "case {case}: is_subset");
        for probe in [0u32, 1, max_id / 2, max_id - 1] {
            let id = TermId(probe);
            assert_eq!(a.contains(id), oa.contains(&id), "case {case}: contains {probe}");
        }
        // iteration is sorted and duplicate-free in both representations
        let items: Vec<TermId> = a.iter().collect();
        assert!(items.windows(2).all(|w| w[0] < w[1]), "case {case}: sorted unique");
        // fingerprints agree across representations of the same set
        assert_eq!(
            a.fingerprint(),
            ExtSet::from(&oa).fingerprint(),
            "case {case}: fingerprint is representation-independent"
        );
    }
}

// ---------------------------------------------------------------------------
// 2. facet algebra vs ops::reference on random graphs
// ---------------------------------------------------------------------------

#[test]
fn facet_ops_match_reference_on_random_graphs() {
    for case in 0u64..20 {
        let mut rng = StdRng::seed_from_u64(1000 + case);
        let store = random_store(&mut rng);
        let (ext, oracle) = random_ext(&mut rng, &store);
        for p in props_of(&store) {
            for step in [PathStep::fwd(p), PathStep::inv(p)] {
                let joined = ops::joins(&store, &ext, step);
                let joined_ref = ops::reference::joins(&store, &oracle, step);
                assert_eq!(joined.to_btree_set(), joined_ref, "case {case}: joins");

                let counts: BTreeMap<TermId, usize> =
                    ops::joins_with_counts(&store, &ext, step).into_iter().collect();
                assert_eq!(
                    counts,
                    ops::reference::joins_with_counts(&store, &oracle, step),
                    "case {case}: joins_with_counts"
                );

                // restrict back through every joined value
                for v in joined.iter().take(5) {
                    assert_eq!(
                        ops::restrict_value(&store, &ext, step, v).to_btree_set(),
                        ops::reference::restrict_value(&store, &oracle, step, v),
                        "case {case}: restrict_value"
                    );
                }
                let vset = joined;
                assert_eq!(
                    ops::restrict_value_set(&store, &ext, step, &vset).to_btree_set(),
                    ops::reference::restrict_value_set(
                        &store,
                        &oracle,
                        step,
                        &vset.to_btree_set()
                    ),
                    "case {case}: restrict_value_set"
                );
            }
        }
        // class restriction over every class in the graph
        for c in 0..6 {
            if let Some(class) = store.lookup_iri(&format!("http://e/C{c}")) {
                assert_eq!(
                    ops::restrict_class(&store, &ext, class).to_btree_set(),
                    ops::reference::restrict_class(&store, &oracle, class),
                    "case {case}: restrict_class"
                );
            }
        }
        // two-step paths: joins_path and back-propagating restrict_path
        let props = props_of(&store);
        if props.len() >= 2 {
            let path = [PathStep::fwd(props[0]), PathStep::fwd(props[1])];
            assert_eq!(
                ops::joins_path(&store, &ext, &path).to_btree_set(),
                ops::reference::joins_path(&store, &oracle, &path),
                "case {case}: joins_path"
            );
            let terminal = ops::joins_path(&store, &ext, &path);
            if !terminal.is_empty() {
                let one = ExtSet::from_sorted_vec(vec![terminal.iter().next().unwrap()]);
                assert_eq!(
                    ops::restrict_path(&store, &ext, &path, &one)
                        .expect("non-empty path")
                        .to_btree_set(),
                    ops::reference::restrict_path(
                        &store,
                        &oracle,
                        &path,
                        &one.to_btree_set()
                    ),
                    "case {case}: restrict_path"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 3. markers: parallel and sequential byte-identical to the seed
// ---------------------------------------------------------------------------

#[test]
fn markers_match_reference_sequential_and_parallel() {
    for case in 0u64..12 {
        let mut rng = StdRng::seed_from_u64(2000 + case);
        let store = random_store(&mut rng);
        let (ext, oracle) = random_ext(&mut rng, &store);
        let classes_ref = markers::reference::class_markers(&store, &oracle);
        let facets_ref = markers::reference::property_facets(&store, &oracle);
        for threads in [1usize, 4] {
            let opts = FacetOptions { threads, ..FacetOptions::default() };
            let classes = markers::class_markers_opts(&store, &ext, opts).unwrap();
            let facets = markers::property_facets_opts(&store, &ext, opts).unwrap();
            assert_eq!(classes, classes_ref, "case {case} threads {threads}: class markers");
            assert_eq!(facets, facets_ref, "case {case} threads {threads}: property facets");
        }
    }
}

// ---------------------------------------------------------------------------
// 4. cache invalidation through SPARQL updates
// ---------------------------------------------------------------------------

#[test]
fn cache_recomputes_after_insert_and_delete_data() {
    let mut store = Store::new();
    store
        .load_turtle(
            "@prefix ex: <http://e/> .\n\
             ex:a a ex:C . ex:b a ex:C .\n\
             ex:a ex:p ex:v1 . ex:b ex:p ex:v2 .\n",
        )
        .unwrap();
    let cache = FacetCache::new(8);
    let opts = FacetOptions::default();
    let class = store.lookup_iri("http://e/C").unwrap();

    let g0 = store.generation();
    let ext = store.instances_set(class);
    let before = cache.class_markers(&store, &ext, opts).unwrap();
    let again = cache.class_markers(&store, &ext, opts).unwrap();
    assert!(std::sync::Arc::ptr_eq(&before, &again), "warm lookup must hit");
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(before[0].count, 2);

    // INSERT DATA bumps the generation; the same logical query recomputes
    execute_update(&mut store, "PREFIX ex: <http://e/> INSERT DATA { ex:c a ex:C . }").unwrap();
    let g1 = store.generation();
    assert!(g1 > g0, "insert must advance the generation");
    let ext = store.instances_set(class);
    let after_insert = cache.class_markers(&store, &ext, opts).unwrap();
    assert_eq!(after_insert[0].count, 3, "cache must see the inserted instance");

    // DELETE DATA likewise
    execute_update(&mut store, "PREFIX ex: <http://e/> DELETE DATA { ex:b a ex:C . }").unwrap();
    let g2 = store.generation();
    assert!(g2 > g1, "delete must advance the generation");
    let ext = store.instances_set(class);
    let after_delete = cache.class_markers(&store, &ext, opts).unwrap();
    assert_eq!(after_delete[0].count, 2, "cache must see the deleted instance");

    // property facets go stale-proof the same way
    let facets = cache.property_facets(&store, &ext, opts).unwrap();
    let total: usize = facets.iter().flat_map(|f| f.values.iter().map(|&(_, c)| c)).sum();
    assert_eq!(total, 1, "ex:b's edge is gone; only ex:a ex:p ex:v1 counts");

    // a no-op update (deleting an absent triple) may still bump the
    // generation — correctness only requires monotonicity, never reuse of a
    // stale entry
    execute_update(&mut store, "PREFIX ex: <http://e/> DELETE DATA { ex:zz a ex:C . }").unwrap();
    assert!(store.generation() >= g2, "generation is monotone");
}
