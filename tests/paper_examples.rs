//! End-to-end reproductions of the paper's worked examples over the
//! Fig 5.3 fixture: the four §5.1 examples, the Fig 1.3 flagship query,
//! and the Fig 6.3 reload flow.

use rdf_analytics::analytics::{AnalyticsSession, EvalStrategy, GroupSpec, MeasureSpec};
use rdf_analytics::datagen::{products_fixture, EX};
use rdf_analytics::facets::PathStep;
use rdf_analytics::hifun::{AggOp, CondOp, DerivedFn};
use rdf_analytics::model::{Term, Value};
use rdf_analytics::sparql::Engine;
use rdf_analytics::store::Store;

fn fixture() -> Store {
    let mut store = Store::new();
    store.load_graph(&products_fixture());
    store
}

fn id(store: &Store, local: &str) -> rdf_analytics::store::TermId {
    store.lookup_iri(&format!("{EX}{local}")).unwrap()
}

fn cell_value(frame: &rdf_analytics::analytics::AnswerFrame, row: usize, col: usize) -> Value {
    Value::from_term(frame.rows[row][col].as_ref().unwrap())
}

/// §5.1 Example 1: average price of laptops made in 2021 from US companies
/// with 2 USB ports (no SSD condition: all fixture laptops qualify anyway).
#[test]
fn example_1_avg_without_grouping() {
    let store = fixture();
    let mut s = AnalyticsSession::start(&store);
    s.select_class(id(&store, "Laptop")).unwrap();
    s.select_path_value(
        &[PathStep::fwd(id(&store, "manufacturer")), PathStep::fwd(id(&store, "origin"))],
        id(&store, "USA"),
    )
    .unwrap();
    s.select_value(id(&store, "USBPorts"), store.lookup(&Term::integer(2)).unwrap())
        .unwrap();
    s.set_measure(MeasureSpec::property(id(&store, "price")));
    s.set_ops(vec![AggOp::Avg]);
    let frame = s.run().unwrap();
    assert_eq!(frame.rows.len(), 1);
    // laptop1 (900) and laptop2 (1000) are the US laptops with 2 ports
    assert!(cell_value(&frame, 0, 0).value_eq(&Value::Float(950.0)));
}

/// §5.1 Example 2: count of laptops with 2 USB ports grouped by
/// manufacturer's country.
#[test]
fn example_2_count_by_country() {
    let store = fixture();
    let mut s = AnalyticsSession::start(&store);
    s.select_class(id(&store, "Laptop")).unwrap();
    s.select_value(id(&store, "USBPorts"), store.lookup(&Term::integer(2)).unwrap())
        .unwrap();
    s.add_grouping(GroupSpec::path(vec![id(&store, "manufacturer"), id(&store, "origin")]));
    s.set_ops(vec![AggOp::Count]);
    let frame = s.run().unwrap();
    assert_eq!(frame.rows.len(), 1); // both 2-port laptops are DELL → USA
    assert_eq!(frame.rows[0][0].as_ref().unwrap().display_name(), "USA");
    assert!(cell_value(&frame, 0, 1).value_eq(&Value::Int(2)));
}

/// §5.1 Example 3: count of laptops with 2-or-more USB ports by country —
/// the range filter.
#[test]
fn example_3_range_filter() {
    let store = fixture();
    let mut s = AnalyticsSession::start(&store);
    s.select_class(id(&store, "Laptop")).unwrap();
    s.select_range(&[PathStep::fwd(id(&store, "USBPorts"))], Some(Value::Int(2)), None)
        .unwrap();
    s.add_grouping(GroupSpec::path(vec![id(&store, "manufacturer"), id(&store, "origin")]));
    s.set_ops(vec![AggOp::Count]);
    let frame = s.run().unwrap();
    assert_eq!(frame.rows.len(), 2); // USA (2), China (1)
}

/// §5.1 Example 4: avg price by company and year, HAVING avg ≥ t — via the
/// Answer-Frame reload (the paper's mechanism) and cross-checked against
/// the direct HAVING form.
#[test]
fn example_4_having_via_reload() {
    let store = fixture();
    let mut s = AnalyticsSession::start(&store);
    s.select_class(id(&store, "Laptop")).unwrap();
    s.add_grouping(GroupSpec::property(id(&store, "manufacturer")));
    s.add_grouping(GroupSpec::property(id(&store, "releaseDate")).with_derived(DerivedFn::Year));
    s.set_measure(MeasureSpec::property(id(&store, "price")));
    s.set_ops(vec![AggOp::Avg]);
    let level1 = s.run().unwrap();
    assert_eq!(level1.rows.len(), 2); // (DELL, 2021): 950, (Lenovo, 2021): 820

    // reload and restrict avg ≥ 900
    let derived = level1.load_as_dataset();
    let mut nested = AnalyticsSession::start(&derived);
    nested
        .select_class(derived.lookup_iri("urn:rdfa:af:Row").unwrap())
        .unwrap();
    let avg_prop = derived.lookup_iri(&level1.column_property(2)).unwrap();
    nested
        .select_range(&[PathStep::fwd(avg_prop)], Some(Value::Float(900.0)), None)
        .unwrap();
    assert_eq!(nested.facets().extension().len(), 1);

    // direct HAVING form agrees
    let mut direct = AnalyticsSession::start(&store);
    direct.select_class(id(&store, "Laptop")).unwrap();
    direct.add_grouping(GroupSpec::property(id(&store, "manufacturer")));
    direct
        .add_grouping(GroupSpec::property(id(&store, "releaseDate")).with_derived(DerivedFn::Year));
    direct.set_measure(MeasureSpec::property(id(&store, "price")));
    direct.set_ops(vec![AggOp::Avg]);
    direct.add_having(0, CondOp::Ge, Term::integer(900));
    assert_eq!(direct.run().unwrap().rows.len(), 1);
}

/// Fig 1.3: the flagship SPARQL query runs verbatim against the fixture.
#[test]
fn fig_1_3_flagship_query_runs_verbatim() {
    let store = fixture();
    let q = r#"
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
        PREFIX ex: <http://www.ics.forth.gr/example#>
        SELECT ?m (AVG(?p) as ?avgprice)
        WHERE {
          ?s rdf:type ex:Laptop.
          ?s ex:manufacturer ?m.
          ?m ex:origin ex:USA.
          ?s ex:price ?p.
          ?s ex:USBPorts ?u.
          ?s ex:hardDrive ?hd.
          ?hd rdf:type ex:SSD.
          ?hd ex:manufacturer ?hdm.
          ?hdm ex:origin ?hdmc.
          ?hdmc ex:locatedAt ex:Asia.
          FILTER (?u >= 2).
          ?s ex:releaseDate ?rd .
          FILTER ( ?rd >= "2021-01-01"^^xsd:date &&
                   ?rd <= "2021-12-31"^^xsd:date)
        } GROUP BY ?m"#;
    let results = Engine::builder(&store).build().run(q).unwrap();
    let sols = results.solutions().unwrap();
    // laptop1 (SSD1 by Maxtor/Singapore/Asia, DELL/USA, 2 ports, 2021) and
    // laptop2 (SSD2 by AVDElectronics/USA — not Asia) → only laptop1 counts
    assert_eq!(sols.len(), 1);
    assert_eq!(sols.rows()[0][0].as_ref().unwrap().display_name(), "DELL");
    assert!(Value::from_term(sols.rows()[0][1].as_ref().unwrap()).value_eq(&Value::Float(900.0)));
}

/// The same information need, formulated through the interaction model
/// instead of hand-written SPARQL — the paper's core claim.
#[test]
fn fig_1_3_via_interaction_model() {
    let store = fixture();
    let mut s = AnalyticsSession::start(&store);
    s.select_class(id(&store, "Laptop")).unwrap();
    s.select_path_value(
        &[PathStep::fwd(id(&store, "manufacturer")), PathStep::fwd(id(&store, "origin"))],
        id(&store, "USA"),
    )
    .unwrap();
    s.select_range(&[PathStep::fwd(id(&store, "USBPorts"))], Some(Value::Int(2)), None)
        .unwrap();
    // hard drive made in Asia: hardDrive ▷ manufacturer ▷ origin ▷ locatedAt
    s.select_path_value(
        &[
            PathStep::fwd(id(&store, "hardDrive")),
            PathStep::fwd(id(&store, "manufacturer")),
            PathStep::fwd(id(&store, "origin")),
            PathStep::fwd(id(&store, "locatedAt")),
        ],
        id(&store, "Asia"),
    )
    .unwrap();
    let date = |s: &str| Value::Date(rdf_analytics::model::Date::parse(s).unwrap());
    s.select_range(
        &[PathStep::fwd(id(&store, "releaseDate"))],
        Some(date("2021-01-01")),
        Some(date("2021-12-31")),
    )
    .unwrap();
    s.add_grouping(GroupSpec::property(id(&store, "manufacturer")));
    s.set_measure(MeasureSpec::property(id(&store, "price")));
    s.set_ops(vec![AggOp::Avg]);
    for strategy in [EvalStrategy::TranslatedSparql, EvalStrategy::DirectHifun] {
        let mut s2 = AnalyticsSession::start(&store).with_strategy(strategy);
        // replay the same clicks
        s2.select_class(id(&store, "Laptop")).unwrap();
        s2.select_path_value(
            &[PathStep::fwd(id(&store, "manufacturer")), PathStep::fwd(id(&store, "origin"))],
            id(&store, "USA"),
        )
        .unwrap();
        s2.select_range(&[PathStep::fwd(id(&store, "USBPorts"))], Some(Value::Int(2)), None)
            .unwrap();
        s2.select_path_value(
            &[
                PathStep::fwd(id(&store, "hardDrive")),
                PathStep::fwd(id(&store, "manufacturer")),
                PathStep::fwd(id(&store, "origin")),
                PathStep::fwd(id(&store, "locatedAt")),
            ],
            id(&store, "Asia"),
        )
        .unwrap();
        s2.select_range(
            &[PathStep::fwd(id(&store, "releaseDate"))],
            Some(date("2021-01-01")),
            Some(date("2021-12-31")),
        )
        .unwrap();
        s2.add_grouping(GroupSpec::property(id(&store, "manufacturer")));
        s2.set_measure(MeasureSpec::property(id(&store, "price")));
        s2.set_ops(vec![AggOp::Avg]);
        let frame = s2.run().unwrap();
        assert_eq!(frame.rows.len(), 1, "strategy {strategy:?}");
        assert_eq!(frame.rows[0][0].as_ref().unwrap().display_name(), "DELL");
        assert!(Value::from_term(frame.rows[0][1].as_ref().unwrap())
            .value_eq(&Value::Float(900.0)));
    }
}

/// Fig 6.2/6.3: multi-aggregate query, tabular answer, reload facets.
#[test]
fn fig_6_2_multi_aggregate_and_reload() {
    let store = fixture();
    let mut s = AnalyticsSession::start(&store);
    s.select_class(id(&store, "Laptop")).unwrap();
    s.select_range(
        &[PathStep::fwd(id(&store, "USBPorts"))],
        Some(Value::Int(2)),
        Some(Value::Int(4)),
    )
    .unwrap();
    s.add_grouping(GroupSpec::property(id(&store, "manufacturer")));
    s.add_grouping(GroupSpec::path(vec![id(&store, "manufacturer"), id(&store, "origin")]));
    s.set_measure(MeasureSpec::property(id(&store, "price")));
    s.set_ops(vec![AggOp::Avg, AggOp::Sum, AggOp::Max]);
    let frame = s.run().unwrap();
    assert_eq!(frame.headers.len(), 5);
    assert_eq!(frame.rows.len(), 2);
    let table = frame.to_table();
    assert!(table.contains("avg(price)"));
    assert!(table.contains("DELL"));

    let derived = frame.load_as_dataset();
    assert_eq!(
        derived.len(),
        frame.rows.len() * (frame.headers.len() + 1)
    );
}
