//! Robustness fuzzing: no input — however malformed — may panic any parser.
//! Errors must come back as `Err`, never as a crash (the engine sits behind
//! a public endpoint, §6.1).

use rdf_analytics::model::{ntriples, turtle};
use rdf_analytics::sparql::{parse_query, Engine};
use rdf_analytics::store::Store;
use rdfa_prng::StdRng;

/// A random string of up to `max` chars drawn from printable ASCII with a
/// sprinkling of whitespace, control chars and multi-byte unicode — the kind
/// of junk a public endpoint actually receives.
fn fuzz_string(rng: &mut StdRng, max: usize) -> String {
    let n = rng.gen_range(0..=max);
    (0..n)
        .map(|_| match rng.gen_range(0..10) {
            0 => '\n',
            1 => '\t',
            2 => ['λ', 'é', '中', '🦀', '\u{0}', '\u{7f}'][rng.gen_range(0usize..6)],
            _ => rng.gen_range(b' '..=b'~') as char,
        })
        .collect()
}

fn printable(rng: &mut StdRng, max: usize) -> String {
    let n = rng.gen_range(0..=max);
    (0..n).map(|_| rng.gen_range(b' '..=b'~') as char).collect()
}

fn from_charset(rng: &mut StdRng, chars: &[u8], max: usize) -> String {
    let n = rng.gen_range(0..=max);
    (0..n)
        .map(|_| chars[rng.gen_range(0..chars.len())] as char)
        .collect()
}

const CASES: u64 = 256;

#[test]
fn turtle_parser_never_panics() {
    for case in 0..CASES {
        let input = fuzz_string(&mut StdRng::seed_from_u64(case), 200);
        let _ = turtle::parse(&input);
    }
}

#[test]
fn ntriples_parser_never_panics() {
    for case in 0..CASES {
        let input = fuzz_string(&mut StdRng::seed_from_u64(3000 + case), 200);
        let _ = ntriples::parse(&input);
    }
}

#[test]
fn sparql_parser_never_panics() {
    for case in 0..CASES {
        let input = fuzz_string(&mut StdRng::seed_from_u64(6000 + case), 200);
        let _ = parse_query(&input);
    }
}

#[test]
fn sparql_parser_never_panics_on_querylike() {
    let heads = ["SELECT", "CONSTRUCT", "ASK", "DESCRIBE", "PREFIX"];
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(9000 + case);
        let head = heads[rng.gen_range(0..heads.len())];
        let body = printable(&mut rng, 120);
        let _ = parse_query(&format!("{head} {body}"));
    }
}

#[test]
fn engine_never_panics_on_arbitrary_select() {
    let mut store = Store::new();
    store
        .load_turtle("@prefix ex: <http://e/> . ex:a ex:p ex:b .")
        .unwrap();
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(12000 + case);
        let v1 = rng.gen_range(b'a'..=b'z') as char;
        let v2 = rng.gen_range(b'a'..=b'z') as char;
        let body = from_charset(
            &mut rng,
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789?<>:/{}.;, ",
            80,
        );
        let _ = Engine::builder(&store).build().run(&format!("SELECT ?{v1} ?{v2} WHERE {{ {body} }}"));
    }
}

#[test]
fn hifun_notation_parser_never_panics() {
    for case in 0..CASES {
        let input = fuzz_string(&mut StdRng::seed_from_u64(15000 + case), 120);
        let _ = rdf_analytics::hifun::parse_hifun(&input, "http://e/");
    }
}

#[test]
fn script_parser_never_panics() {
    for case in 0..CASES {
        let input = fuzz_string(&mut StdRng::seed_from_u64(18000 + case), 200);
        let _ = rdf_analytics::analytics::Script::parse(&input);
    }
}

#[test]
fn update_parser_never_panics() {
    for case in 0..CASES {
        let input = fuzz_string(&mut StdRng::seed_from_u64(21000 + case), 160);
        let mut store = Store::new();
        let _ = rdf_analytics::sparql::execute_update(&mut store, &input);
    }
}

// ---- N-Triples round-trip properties -------------------------------------
//
// N-Triples is the durability format (WAL payloads, fallback exports), so
// serialize → parse must reproduce every literal exactly — including the
// adversarial ones.

use rdf_analytics::model::{Graph, Literal, Term, Triple};

/// A literal lexical form stuffed with escape-relevant characters: quotes,
/// backslashes, control chars, newlines, multi-byte unicode, astral planes.
fn adversarial_lexical(rng: &mut StdRng, max: usize) -> String {
    let n = rng.gen_range(0..=max);
    (0..n)
        .map(|_| match rng.gen_range(0..12) {
            0 => '"',
            1 => '\\',
            2 => '\n',
            3 => '\r',
            4 => '\t',
            5 => '\u{0}',
            6 => '\u{1b}',
            7 => '\u{7f}',
            8 => ['λ', '中', '🦀', '\u{e000}', '\u{10ffff}'][rng.gen_range(0usize..5)],
            _ => rng.gen_range(b' '..=b'~') as char,
        })
        .collect()
}

#[test]
fn ntriples_roundtrips_adversarial_literals() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(24000 + case);
        let mut graph = Graph::new();
        let term = match rng.gen_range(0..3) {
            0 => Term::string(adversarial_lexical(&mut rng, 40)),
            1 => Term::Literal(Literal::lang_string(adversarial_lexical(&mut rng, 40), "en")),
            _ => Term::iri(format!("http://e/o{case}")),
        };
        graph.push(Triple::new(
            Term::iri(format!("http://e/s{case}")),
            Term::iri("http://e/p"),
            term,
        ));
        let text = ntriples::serialize(&graph);
        let parsed = ntriples::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: serialized form unparsable: {e}\n{text}"));
        assert_eq!(
            parsed.iter().collect::<Vec<_>>(),
            graph.iter().collect::<Vec<_>>(),
            "case {case} round-trip mismatch"
        );
    }
}

#[test]
fn ntriples_rejects_lone_surrogate_escapes() {
    for (input, what) in [
        (r#"<http://e/s> <http://e/p> "\uD800" ."#, "high surrogate"),
        (r#"<http://e/s> <http://e/p> "\uDFFF" ."#, "low surrogate"),
        (r#"<http://e/s> <http://e/p> "\U0000D812" ."#, "surrogate via \\U"),
        (r#"<http://e/s> <http://e/p> "\U00110000" ."#, "beyond U+10FFFF"),
        (r#"<http://e/s> <http://e/p> "\u12" ."#, "truncated \\u"),
        (r#"<http://e/s> <http://e/p> "\q" ."#, "unknown escape"),
    ] {
        let err = ntriples::parse(input).expect_err(what);
        assert_eq!(err.line, 1, "{what}: {err}");
    }
}

#[test]
fn ntriples_accepts_bom_and_crlf() {
    let input = "\u{feff}<http://e/s> <http://e/p> \"v1\" .\r\n<http://e/s> <http://e/p> \"v2\" .\r\n";
    let graph = ntriples::parse(input).expect("BOM + CRLF input parses");
    assert_eq!(graph.len(), 2);
    // and the round-trip normalizes to plain LF without losing data
    let again = ntriples::parse(&ntriples::serialize(&graph)).unwrap();
    assert_eq!(again.len(), 2);
}

#[test]
fn ntriples_errors_carry_line_and_lexeme() {
    let input = "<http://e/s> <http://e/p> \"ok\" .\n<http://e/s> <http://e/p> \"\\uD800\" .";
    let err = ntriples::parse(input).expect_err("lone surrogate on line 2");
    assert_eq!(err.line, 2);
    assert!(!err.lexeme.is_empty());
    let msg = err.to_string();
    assert!(msg.contains("line 2"), "{msg}");
}
