//! Robustness fuzzing: no input — however malformed — may panic any parser.
//! Errors must come back as `Err`, never as a crash (the engine sits behind
//! a public endpoint, §6.1).

use proptest::prelude::*;
use rdf_analytics::model::{ntriples, turtle};
use rdf_analytics::sparql::{parse_query, Engine};
use rdf_analytics::store::Store;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn turtle_parser_never_panics(input in ".{0,200}") {
        let _ = turtle::parse(&input);
    }

    #[test]
    fn ntriples_parser_never_panics(input in ".{0,200}") {
        let _ = ntriples::parse(&input);
    }

    #[test]
    fn sparql_parser_never_panics(input in ".{0,200}") {
        let _ = parse_query(&input);
    }

    #[test]
    fn sparql_parser_never_panics_on_querylike(
        head in "(SELECT|CONSTRUCT|ASK|DESCRIBE|PREFIX)",
        body in "[ -~]{0,120}",
    ) {
        let _ = parse_query(&format!("{head} {body}"));
    }

    #[test]
    fn engine_never_panics_on_arbitrary_select(
        vars in "[?][a-z] [?][a-z]",
        body in "[a-zA-Z0-9?<>:/{}.;, ]{0,80}",
    ) {
        let mut store = Store::new();
        store
            .load_turtle("@prefix ex: <http://e/> . ex:a ex:p ex:b .")
            .unwrap();
        let _ = Engine::new(&store).query(&format!("SELECT {vars} WHERE {{ {body} }}"));
    }

    #[test]
    fn hifun_notation_parser_never_panics(input in ".{0,120}") {
        let _ = rdf_analytics::hifun::parse_hifun(&input, "http://e/");
    }

    #[test]
    fn script_parser_never_panics(input in "[ -~\\n]{0,200}") {
        let _ = rdf_analytics::analytics::Script::parse(&input);
    }

    #[test]
    fn update_parser_never_panics(input in ".{0,160}") {
        let mut store = Store::new();
        let _ = rdf_analytics::sparql::execute_update(&mut store, &input);
    }
}
