//! Property tests for the serialization substrate: Turtle and N-Triples
//! round-trips over random graphs, and store load/export stability.

use rdf_analytics::model::{ntriples, turtle, Graph, Literal, Term, Triple};
use rdf_analytics::store::Store;
use rdfa_prng::StdRng;

fn rand_word(rng: &mut StdRng, chars: &[u8], min: usize, max: usize) -> String {
    let n = rng.gen_range(min..=max);
    (0..n)
        .map(|_| chars[rng.gen_range(0..chars.len())] as char)
        .collect()
}

const LOWER: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
const IRI_TAIL: &[u8] =
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
const PRINTABLE: &[u8] =
    b" !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";

fn arb_iri(rng: &mut StdRng) -> Term {
    let head = rand_word(rng, b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ", 1, 1);
    let tail = rand_word(rng, IRI_TAIL, 0, 10);
    Term::iri(format!("http://rt.example/{head}{tail}"))
}

fn arb_literal(rng: &mut StdRng) -> Term {
    match rng.gen_range(0..5) {
        // printable strings incl. characters that need escaping
        0 => Term::string(rand_word(rng, PRINTABLE, 0, 20)),
        1 => Term::integer(rng.gen_range(i64::MIN..=i64::MAX)),
        2 => Term::boolean(rng.gen_bool(0.5)),
        3 => Term::date(
            rng.gen_range(1990i32..2030),
            rng.gen_range(1u8..13),
            rng.gen_range(1u8..29),
        ),
        _ => Term::Literal(Literal::lang_string(
            rand_word(rng, LOWER, 1, 8),
            rand_word(rng, LOWER, 2, 2),
        )),
    }
}

fn arb_triple(rng: &mut StdRng) -> Triple {
    let s = if rng.gen_bool(0.7) {
        arb_iri(rng)
    } else {
        Term::blank(rand_word(rng, LOWER, 1, 6))
    };
    let p = arb_iri(rng);
    let o = match rng.gen_range(0..3) {
        0 => arb_iri(rng),
        1 => arb_literal(rng),
        _ => Term::blank(rand_word(rng, LOWER, 1, 6)),
    };
    Triple::new(s, p, o)
}

fn arb_graph(rng: &mut StdRng) -> Graph {
    let n = rng.gen_range(0..30);
    Graph::from_iter((0..n).map(|_| arb_triple(rng)))
}

fn sorted(g: &Graph) -> Vec<Triple> {
    let mut v: Vec<Triple> = g.iter().cloned().collect();
    v.sort();
    v.dedup();
    v
}

#[test]
fn ntriples_roundtrip() {
    for case in 0u64..64 {
        let g = arb_graph(&mut StdRng::seed_from_u64(case));
        let text = ntriples::serialize(&g);
        let back = ntriples::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(sorted(&g), sorted(&back), "case {case}");
    }
}

#[test]
fn turtle_roundtrip() {
    for case in 0u64..64 {
        let g = arb_graph(&mut StdRng::seed_from_u64(1000 + case));
        let text = turtle::serialize(&g, &[("rt", "http://rt.example/")]);
        let back = turtle::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(sorted(&g), sorted(&back), "case {case}");
    }
}

#[test]
fn store_load_export_is_stable() {
    for case in 0u64..64 {
        let g = arb_graph(&mut StdRng::seed_from_u64(2000 + case));
        let mut store = Store::new();
        store.load_graph(&g);
        let exported = store.to_graph();
        // a second round through the store changes nothing
        let mut store2 = Store::new();
        store2.load_graph(&exported);
        assert_eq!(sorted(&exported), sorted(&store2.to_graph()), "case {case}");
        // the store deduplicates: exported set equals the distinct input set
        assert_eq!(sorted(&g), sorted(&exported), "case {case}");
    }
}

#[test]
fn turtle_roundtrip_tricky_strings() {
    let mut g = Graph::new();
    for s in ["line\nbreak", "tab\there", "quote\"inside", "back\\slash", ""] {
        g.add(
            Term::iri("http://rt.example/s"),
            Term::iri("http://rt.example/p"),
            Term::string(s),
        );
    }
    let text = turtle::serialize(&g, &[]);
    let back = turtle::parse(&text).unwrap();
    assert_eq!(sorted(&g), sorted(&back));
}
