//! Property tests for the serialization substrate: Turtle and N-Triples
//! round-trips over random graphs, and store load/export stability.

use proptest::prelude::*;
use rdf_analytics::model::{ntriples, turtle, Graph, Literal, Term, Triple};
use rdf_analytics::store::Store;

fn arb_iri() -> impl Strategy<Value = Term> {
    "[a-zA-Z][a-zA-Z0-9_]{0,10}".prop_map(|s| Term::iri(format!("http://rt.example/{s}")))
}

fn arb_literal() -> impl Strategy<Value = Term> {
    prop_oneof![
        // printable strings incl. characters that need escaping
        "[ -~]{0,20}".prop_map(Term::string),
        any::<i64>().prop_map(Term::integer),
        any::<bool>().prop_map(Term::boolean),
        (1990i32..2030, 1u8..13, 1u8..29).prop_map(|(y, m, d)| Term::date(y, m, d)),
        ("[a-z]{1,8}", "[a-z]{2}")
            .prop_map(|(s, lang)| Term::Literal(Literal::lang_string(s, lang))),
    ]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (
        prop_oneof![arb_iri(), "[a-z]{1,6}".prop_map(Term::blank)],
        arb_iri(),
        prop_oneof![arb_iri(), arb_literal(), "[a-z]{1,6}".prop_map(Term::blank)],
    )
        .prop_map(|(s, p, o)| Triple::new(s, p, o))
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec(arb_triple(), 0..30).prop_map(Graph::from_iter)
}

fn sorted(g: &Graph) -> Vec<Triple> {
    let mut v: Vec<Triple> = g.iter().cloned().collect();
    v.sort();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn ntriples_roundtrip(g in arb_graph()) {
        let text = ntriples::serialize(&g);
        let back = ntriples::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(sorted(&g), sorted(&back));
    }

    #[test]
    fn turtle_roundtrip(g in arb_graph()) {
        let text = turtle::serialize(&g, &[("rt", "http://rt.example/")]);
        let back = turtle::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(sorted(&g), sorted(&back));
    }

    #[test]
    fn store_load_export_is_stable(g in arb_graph()) {
        let mut store = Store::new();
        store.load_graph(&g);
        let exported = store.to_graph();
        // a second round through the store changes nothing
        let mut store2 = Store::new();
        store2.load_graph(&exported);
        prop_assert_eq!(sorted(&exported), sorted(&store2.to_graph()));
        // the store deduplicates: exported set equals the distinct input set
        prop_assert_eq!(sorted(&g), sorted(&exported));
    }
}

#[test]
fn turtle_roundtrip_tricky_strings() {
    let mut g = Graph::new();
    for s in ["line\nbreak", "tab\there", "quote\"inside", "back\\slash", ""] {
        g.add(
            Term::iri("http://rt.example/s"),
            Term::iri("http://rt.example/p"),
            Term::string(s),
        );
    }
    let text = turtle::serialize(&g, &[]);
    let back = turtle::parse(&text).unwrap();
    assert_eq!(sorted(&g), sorted(&back));
}
