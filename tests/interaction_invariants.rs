//! Property tests of the interaction model's formal guarantees (§5.3):
//!
//! 1. **Never-empty results** — every offered transition marker leads to a
//!    non-empty extension.
//! 2. **Monotone restriction** — a transition's extension is a subset of
//!    its predecessor's.
//! 3. **Count correctness** — a value marker's count equals the size of the
//!    extension the click produces; counts over a facet's values cover the
//!    extension.
//! 4. **Intention faithfulness** — evaluating a state's intention (SPARQL)
//!    returns exactly its extension.
//! 5. **Back inverts** — `back()` restores the previous state exactly.

use rdf_analytics::datagen::{ProductsGenerator, EX};
use rdf_analytics::facets::{FacetedSession, PathStep};
use rdf_analytics::sparql::Engine;
use rdf_analytics::store::{Store, TermId};
use rdfa_prng::StdRng;
use std::collections::BTreeSet;

fn build_store(n_products: usize, seed: u64) -> Store {
    let mut store = Store::new();
    store.load_graph(&ProductsGenerator::new(n_products, seed).generate());
    store
}

/// Drive a random click walk; at each step pick a random offered marker.
fn random_walk(store: &Store, clicks: &[usize]) -> bool {
    let mut session = FacetedSession::start(store);
    let laptop = store.lookup_iri(&format!("{EX}Laptop")).unwrap();
    session.select_class(laptop).unwrap();
    for &pick in clicks {
        let facets = session.facets();
        if facets.is_empty() {
            break;
        }
        let f = &facets[pick % facets.len()];
        if f.values.is_empty() {
            continue;
        }
        let (value, count) = f.values[pick % f.values.len()];
        let before = session.extension().clone();
        let prop = f.property;
        session
            .select_value(prop, value)
            .expect("offered markers never produce empty extensions");
        let after = session.extension();
        // invariant 2: restriction
        assert!(after.is_subset(&before), "extension must shrink monotonically");
        // invariant 3: the advertised count is exactly the result size
        assert_eq!(after.len(), count, "marker count must match the click result");
        // invariant 1: non-empty
        assert!(!after.is_empty());
    }
    // invariant 4: intention evaluates back to the extension
    let sparql = session.intent_sparql();
    let sols = Engine::builder(store).build().run(&sparql).unwrap();
    let got: BTreeSet<TermId> = sols
        .solutions()
        .unwrap()
        .column("x")
        .filter_map(|t| store.lookup(t))
        .collect();
    assert_eq!(got, session.extension().to_btree_set(), "intention must reproduce the extension");
    true
}

#[test]
fn click_walks_preserve_invariants() {
    for case in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(case);
        let seed = rng.gen_range(0u64..1000);
        let clicks: Vec<usize> =
            (0..rng.gen_range(0..5)).map(|_| rng.gen_range(0usize..100)).collect();
        let store = build_store(60, seed);
        assert!(random_walk(&store, &clicks), "case {case}");
    }
}

#[test]
fn back_restores_previous_state_exactly() {
    let store = build_store(40, 3);
    let laptop = store.lookup_iri(&format!("{EX}Laptop")).unwrap();
    let mut session = FacetedSession::start(&store);
    session.select_class(laptop).unwrap();
    let snapshot_ext = session.extension().clone();
    let snapshot_intent = session.intent().clone();

    let facets = session.facets();
    let f = &facets[0];
    let (v, _) = f.values[0];
    session.select_value(f.property, v).unwrap();
    assert!(session.back());
    assert_eq!(session.extension(), &snapshot_ext);
    assert_eq!(session.intent(), &snapshot_intent);
    // initial state cannot be popped
    assert!(session.back());
    assert!(!session.back());
}

#[test]
fn facet_counts_cover_extension() {
    let store = build_store(80, 17);
    let laptop = store.lookup_iri(&format!("{EX}Laptop")).unwrap();
    let mut session = FacetedSession::start(&store);
    session.select_class(laptop).unwrap();
    let n = session.extension().len();
    for f in session.facets() {
        // every laptop has exactly one value for the generator's functional
        // facets, so per-facet counts sum to the extension size
        let name = store.term(f.property).display_name();
        if ["manufacturer", "price", "USBPorts", "releaseDate", "hardDrive"].contains(&name.as_str())
        {
            let sum: usize = f.values.iter().map(|&(_, c)| c).sum();
            assert_eq!(sum, n, "facet {name} counts must cover the extension");
        }
    }
}

#[test]
fn path_markers_counts_match_clicks() {
    let store = build_store(60, 23);
    let laptop = store.lookup_iri(&format!("{EX}Laptop")).unwrap();
    let man = store.lookup_iri(&format!("{EX}manufacturer")).unwrap();
    let origin = store.lookup_iri(&format!("{EX}origin")).unwrap();
    let mut session = FacetedSession::start(&store);
    session.select_class(laptop).unwrap();
    let path = [PathStep::fwd(man), PathStep::fwd(origin)];
    for (value, count) in session.expand(&path) {
        let mut probe = FacetedSession::start(&store);
        probe.select_class(laptop).unwrap();
        probe.select_path_value(&path, value).unwrap();
        assert_eq!(probe.extension().len(), count);
    }
}
