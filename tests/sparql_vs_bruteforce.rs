//! Property test: the SPARQL engine's BGP + FILTER evaluation agrees with a
//! naive reference evaluator on random graphs and random conjunctive
//! queries. This pins down the core join machinery (with and without the
//! join-order heuristic) independently of the hand-written unit tests.

use rdf_analytics::model::{Term, Value};
use rdf_analytics::sparql::Engine;
use rdf_analytics::store::Store;
use rdfa_prng::StdRng;

const EX: &str = "http://b/";

/// A random graph over small vocabularies.
#[derive(Debug, Clone)]
struct RandGraph {
    /// (subject idx, predicate idx, object) — object is a resource idx or a
    /// small integer
    triples: Vec<(u8, u8, ObjKind)>,
}

#[derive(Debug, Clone, Copy)]
enum ObjKind {
    Res(u8),
    Int(i8),
}

/// One triple pattern: each position is a variable id (0–3) or a constant.
#[derive(Debug, Clone, Copy)]
struct RandPattern {
    s: Slot,
    p: u8,
    o: Slot,
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Var(u8),
    Res(u8),
    Int(i8),
}

fn rand_graph(rng: &mut StdRng) -> RandGraph {
    let n = rng.gen_range(1..20);
    let triples = (0..n)
        .map(|_| {
            let o = if rng.gen_bool(0.5) {
                ObjKind::Res(rng.gen_range(0u8..5))
            } else {
                ObjKind::Int(rng.gen_range(0i8..6))
            };
            (rng.gen_range(0u8..5), rng.gen_range(0u8..3), o)
        })
        .collect();
    RandGraph { triples }
}

fn rand_slot(rng: &mut StdRng) -> Slot {
    match rng.gen_range(0..3) {
        0 => Slot::Var(rng.gen_range(0u8..3)),
        1 => Slot::Res(rng.gen_range(0u8..5)),
        _ => Slot::Int(rng.gen_range(0i8..6)),
    }
}

fn rand_patterns(rng: &mut StdRng) -> Vec<RandPattern> {
    let n = rng.gen_range(1..4);
    (0..n)
        .map(|_| RandPattern { s: rand_slot(rng), p: rng.gen_range(0u8..3), o: rand_slot(rng) })
        .collect()
}

fn res(i: u8) -> String {
    format!("{EX}r{i}")
}

fn build_store(g: &RandGraph) -> Store {
    let mut store = Store::new();
    for &(s, p, o) in &g.triples {
        let obj = match o {
            ObjKind::Res(r) => Term::iri(res(r)),
            ObjKind::Int(v) => Term::integer(v as i64),
        };
        store.insert(&rdf_analytics::model::Triple::new(
            Term::iri(res(s)),
            Term::iri(format!("{EX}p{p}")),
            obj,
        ));
    }
    store.materialize_inference();
    store
}

fn slot_sparql(s: Slot) -> String {
    match s {
        Slot::Var(v) => format!("?v{v}"),
        Slot::Res(r) => format!("<{}>", res(r)),
        Slot::Int(v) => format!("{v}"),
    }
}

fn to_sparql(patterns: &[RandPattern]) -> String {
    let mut vars: Vec<u8> = Vec::new();
    for p in patterns {
        for s in [p.s, p.o] {
            if let Slot::Var(v) = s {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
    }
    vars.sort();
    let projection = if vars.is_empty() {
        "*".to_owned()
    } else {
        vars.iter().map(|v| format!("?v{v}")).collect::<Vec<_>>().join(" ")
    };
    let mut body = String::new();
    for p in patterns {
        body.push_str(&format!(
            "{} <{}p{}> {} . ",
            slot_sparql(p.s),
            EX,
            p.p,
            slot_sparql(p.o)
        ));
    }
    format!("SELECT {projection} WHERE {{ {body}}}")
}

/// Naive reference: recursive backtracking join over the raw triple list.
fn brute_force(g: &RandGraph, patterns: &[RandPattern]) -> Vec<Vec<String>> {
    // variable ids used, ordered
    let mut vars: Vec<u8> = Vec::new();
    for p in patterns {
        for s in [p.s, p.o] {
            if let Slot::Var(v) = s {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
    }
    vars.sort();
    let mut rows = Vec::new();
    let mut binding: std::collections::HashMap<u8, String> = std::collections::HashMap::new();
    fn obj_key(o: ObjKind) -> String {
        match o {
            ObjKind::Res(r) => format!("R{r}"),
            ObjKind::Int(v) => format!("I{v}"),
        }
    }
    fn slot_key_subject(s: u8) -> String {
        format!("R{s}")
    }
    fn matches(
        slot: Slot,
        actual: &str,
        binding: &mut std::collections::HashMap<u8, String>,
        bound_here: &mut Vec<u8>,
    ) -> bool {
        match slot {
            Slot::Res(r) => actual == format!("R{r}"),
            Slot::Int(v) => actual == format!("I{v}"),
            Slot::Var(v) => match binding.get(&v) {
                Some(existing) => existing == actual,
                None => {
                    binding.insert(v, actual.to_owned());
                    bound_here.push(v);
                    true
                }
            },
        }
    }
    fn recurse(
        g: &RandGraph,
        patterns: &[RandPattern],
        idx: usize,
        binding: &mut std::collections::HashMap<u8, String>,
        vars: &[u8],
        rows: &mut Vec<Vec<String>>,
    ) {
        if idx == patterns.len() {
            rows.push(vars.iter().map(|v| binding[v].clone()).collect());
            return;
        }
        let pat = patterns[idx];
        for &(s, p, o) in &g.triples {
            if p != pat.p {
                continue;
            }
            let mut bound_here = Vec::new();
            let s_ok = matches(pat.s, &slot_key_subject(s), binding, &mut bound_here);
            let o_ok = s_ok && matches(pat.o, &obj_key(o), binding, &mut bound_here);
            if s_ok && o_ok {
                recurse(g, patterns, idx + 1, binding, vars, rows);
            }
            for v in bound_here {
                binding.remove(&v);
            }
        }
    }
    recurse(g, patterns, 0, &mut binding, &vars, &mut rows);
    rows.sort();
    rows
}

/// Canonicalize engine output into the brute-force key space.
fn canonicalize(rows: &[Vec<Option<Term>>]) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|c| match c {
                    Some(Term::Iri(iri)) => format!("R{}", &iri[iri.len() - 1..]),
                    Some(t) => match Value::from_term(t) {
                        Value::Int(v) => format!("I{v}"),
                        other => other.render(),
                    },
                    None => "∅".to_owned(),
                })
                .collect()
        })
        .collect();
    out.sort();
    out
}

/// Property: random graph × random conjunctive query agrees with the naive
/// reference evaluator, with and without the join-order heuristic.
#[test]
fn engine_agrees_with_bruteforce() {
    for case in 0u64..128 {
        let mut rng = StdRng::seed_from_u64(case);
        let g = rand_graph(&mut rng);
        let pats = rand_patterns(&mut rng);

        // duplicate triples in the random graph collapse in the store; do the
        // same for the reference
        let mut dedup = g.clone();
        dedup.triples.sort_by_key(|&(s, p, o)| (s, p, obj_sort_key(o)));
        dedup.triples.dedup_by_key(|&mut (s, p, o)| (s, p, obj_sort_key(o)));

        let store = build_store(&dedup);
        let sparql = to_sparql(&pats);
        let expected = brute_force(&dedup, &pats);

        for reorder in [true, false] {
            let engine = Engine::builder(&store).reorder_bgp(reorder).build();
            let sols = engine
                .run(&sparql)
                .unwrap_or_else(|e| panic!("{e}\n{sparql}"))
                .into_solutions()
                .unwrap();
            let got = canonicalize(sols.rows());
            assert_eq!(got, expected, "case {case} reorder={reorder} query: {sparql}");
        }
    }
}

fn obj_sort_key(o: ObjKind) -> (u8, i16) {
    match o {
        ObjKind::Res(r) => (0, r as i16),
        ObjKind::Int(v) => (1, v as i16),
    }
}

#[test]
fn regression_repeated_variable() {
    // ?v0 p0 ?v0 — self-loop pattern
    let g = RandGraph { triples: vec![(1, 0, ObjKind::Res(1)), (1, 0, ObjKind::Res(2))] };
    let store = build_store(&g);
    let pats = [RandPattern { s: Slot::Var(0), p: 0, o: Slot::Var(0) }];
    let sparql = to_sparql(&pats);
    let engine = Engine::builder(&store).build();
    let sols = engine.run(&sparql).unwrap().into_solutions().unwrap();
    assert_eq!(canonicalize(sols.rows()), brute_force(&g, &pats));
    assert_eq!(sols.len(), 1); // only the self-loop
}
