//! Proposition 2 (soundness): on data satisfying HIFUN's functionality
//! assumption, the direct functional evaluation of a HIFUN query and the
//! evaluation of its SPARQL translation produce the same answer.
//!
//! Property test: random functional datasets × random queries drawn from
//! the whole query space the interaction model reaches (groupings,
//! compositions, derived attributes, restrictions, HAVING, every aggregate).

use rdf_analytics::hifun::{
    self, query::RestrictedPath, AggOp, AttrPath, CondOp, DerivedFn, HifunQuery, Restriction, Step,
};
use rdf_analytics::model::{Term, Value};
use rdf_analytics::sparql::Engine;
use rdf_analytics::store::Store;
use rdfa_prng::StdRng;

const EX: &str = "http://t/";

fn p(local: &str) -> String {
    format!("{EX}{local}")
}

/// A random functional dataset: items with `cat` (resource), `num`
/// (integer), `date` (xsd:date) attributes; categories have a `region`.
#[derive(Debug, Clone)]
struct Dataset {
    /// per item: (category index 0..3, num 0..50, month 1..12, has_num)
    items: Vec<(usize, i64, u8, bool)>,
}

fn rand_dataset(rng: &mut StdRng) -> Dataset {
    let n = rng.gen_range(1..25);
    let items = (0..n)
        .map(|_| {
            (
                rng.gen_range(0usize..3),
                rng.gen_range(0i64..50),
                rng.gen_range(1u8..13),
                rng.gen_bool(0.9),
            )
        })
        .collect();
    Dataset { items }
}

fn build_store(d: &Dataset) -> Store {
    let mut store = Store::new();
    let mut ttl = format!("@prefix ex: <{EX}> .\n@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n");
    // category backbone: cat0..cat2 with regions
    for (i, region) in [(0, "north"), (1, "south"), (2, "north")] {
        ttl.push_str(&format!("ex:cat{i} ex:region ex:{region} .\n"));
    }
    for (i, &(cat, num, month, has_num)) in d.items.iter().enumerate() {
        ttl.push_str(&format!("ex:item{i} a ex:Item ; ex:cat ex:cat{cat} "));
        ttl.push_str(&format!("; ex:date \"2021-{month:02}-10\"^^xsd:date "));
        if has_num {
            ttl.push_str(&format!("; ex:num {num} "));
        }
        ttl.push_str(".\n");
    }
    store.load_turtle(&ttl).unwrap();
    store
}

/// The query space: grouping choice × measuring choice × op × restrictions.
#[derive(Debug, Clone)]
struct QuerySpec {
    grouping: u8,      // 0 none, 1 cat, 2 cat/region, 3 month(date), 4 pair(cat, month)
    op: AggOp,
    measure_num: bool, // measure num vs identity-count
    m_restr: Option<i64>,
    root_cat: Option<usize>,
    having: Option<i64>,
}

fn rand_query(rng: &mut StdRng) -> QuerySpec {
    let ops = [AggOp::Count, AggOp::Sum, AggOp::Avg, AggOp::Min, AggOp::Max];
    QuerySpec {
        grouping: rng.gen_range(0u8..5),
        op: ops[rng.gen_range(0..ops.len())],
        measure_num: rng.gen_bool(0.5),
        m_restr: rng.gen_bool(0.5).then(|| rng.gen_range(0i64..40)),
        root_cat: rng.gen_bool(0.5).then(|| rng.gen_range(0usize..3)),
        having: rng.gen_bool(0.5).then(|| rng.gen_range(0i64..100)),
    }
}

fn build_query(spec: &QuerySpec) -> HifunQuery {
    let mut q = HifunQuery::new(spec.op);
    match spec.grouping {
        0 => {}
        1 => q = q.group_by(AttrPath::prop(p("cat"))),
        2 => q = q.group_by(AttrPath::props(&[&p("cat"), &p("region")])),
        3 => q = q.group_by(AttrPath::prop(p("date")).derived(DerivedFn::Month)),
        _ => {
            q = q
                .group_by(AttrPath::prop(p("cat")))
                .group_by(AttrPath::prop(p("date")).derived(DerivedFn::Month))
        }
    }
    // identity measuring only makes sense for COUNT
    let measure_num = spec.measure_num || spec.op != AggOp::Count;
    if measure_num {
        let mut rp = RestrictedPath::new(AttrPath::prop(p("num")));
        if let Some(t) = spec.m_restr {
            rp = rp.restricted(Restriction::cmp(CondOp::Ge, Term::integer(t)));
        }
        q = q.measure_restricted(rp);
    }
    if let Some(cat) = spec.root_cat {
        q = q.with_conditions(vec![Restriction::via(
            vec![Step::Prop(p("cat"))],
            CondOp::Eq,
            Term::iri(format!("{EX}cat{cat}")),
        )]);
    }
    if let Some(h) = spec.having {
        q = q.having(0, CondOp::Ge, Term::integer(h));
    }
    q
}

/// Canonical form of an answer: rows of rendered values, sorted. Numerics
/// are normalized through f64 so `900` and `900.0` compare equal.
fn canonical(rows: &[Vec<Option<Term>>]) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|c| match c {
                    None => "∅".to_owned(),
                    Some(t) => {
                        let v = Value::from_term(t);
                        match v.as_f64() {
                            Some(f) => format!("{:.6}", f),
                            None => v.render(),
                        }
                    }
                })
                .collect()
        })
        .collect();
    out.sort();
    out
}

#[test]
fn direct_eval_equals_translated_sparql() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(case);
        let d = rand_dataset(&mut rng);
        let spec = rand_query(&mut rng);
        let store = build_store(&d);
        let q = build_query(&spec);
        let direct = hifun::direct::evaluate(&store, &q).unwrap();
        let sparql = hifun::translate::to_sparql(&q);
        let translated = Engine::builder(&store).build()
            .run(&sparql)
            .unwrap_or_else(|e| panic!("{e}\n{sparql}"))
            .into_solutions()
            .unwrap();
        assert_eq!(
            canonical(direct.rows()),
            canonical(translated.rows()),
            "case {case}: query {q} translated to:\n{sparql}"
        );
    }
}

#[test]
fn regression_empty_grouping_with_unmatched_root_condition() {
    // historical shrink: single item in cat0, restriction to cat1 → empty
    // extension; both strategies must agree on the empty answer
    let d = Dataset { items: vec![(0, 0, 1, false)] };
    let spec = QuerySpec {
        grouping: 0,
        op: AggOp::Count,
        measure_num: false,
        m_restr: None,
        root_cat: Some(1),
        having: None,
    };
    let store = build_store(&d);
    let q = build_query(&spec);
    let direct = hifun::direct::evaluate(&store, &q).unwrap();
    let translated = Engine::builder(&store).build()
        .run(&hifun::translate::to_sparql(&q))
        .unwrap()
        .into_solutions()
        .unwrap();
    assert_eq!(canonical(direct.rows()), canonical(translated.rows()));
}

#[test]
fn regression_identity_count_with_having() {
    // hand-picked case exercising COUNT(DISTINCT ?x1) + HAVING
    let d = Dataset { items: vec![(0, 5, 1, true), (0, 7, 2, true), (1, 9, 1, false)] };
    let store = build_store(&d);
    let q = HifunQuery::new(AggOp::Count)
        .group_by(AttrPath::prop(p("cat")))
        .having(0, CondOp::Ge, Term::integer(2));
    let direct = hifun::direct::evaluate(&store, &q).unwrap();
    let translated = Engine::builder(&store).build()
        .run(&hifun::translate::to_sparql(&q))
        .unwrap()
        .into_solutions()
        .unwrap();
    assert_eq!(canonical(direct.rows()), canonical(translated.rows()));
    assert_eq!(direct.len(), 1); // only cat0 has ≥ 2 items
}

#[test]
fn regression_avg_with_measure_restriction() {
    let d = Dataset { items: vec![(0, 10, 1, true), (0, 30, 1, true), (1, 50, 2, true)] };
    let store = build_store(&d);
    let q = HifunQuery::new(AggOp::Avg)
        .group_by(AttrPath::prop(p("cat")))
        .measure_restricted(
            RestrictedPath::new(AttrPath::prop(p("num")))
                .restricted(Restriction::cmp(CondOp::Ge, Term::integer(20))),
        );
    let direct = hifun::direct::evaluate(&store, &q).unwrap();
    let translated = Engine::builder(&store).build()
        .run(&hifun::translate::to_sparql(&q))
        .unwrap()
        .into_solutions()
        .unwrap();
    assert_eq!(canonical(direct.rows()), canonical(translated.rows()));
}
