//! Proposition 2 (soundness): on data satisfying HIFUN's functionality
//! assumption, the direct functional evaluation of a HIFUN query and the
//! evaluation of its SPARQL translation produce the same answer.
//!
//! Property test: random functional datasets × random queries drawn from
//! the whole query space the interaction model reaches (groupings,
//! compositions, derived attributes, restrictions, HAVING, every aggregate).

use proptest::prelude::*;
use rdf_analytics::hifun::{
    self, query::RestrictedPath, AggOp, AttrPath, CondOp, DerivedFn, HifunQuery, Restriction, Step,
};
use rdf_analytics::model::{Term, Value};
use rdf_analytics::sparql::Engine;
use rdf_analytics::store::Store;

const EX: &str = "http://t/";

fn p(local: &str) -> String {
    format!("{EX}{local}")
}

/// A random functional dataset: items with `cat` (resource), `num`
/// (integer), `date` (xsd:date) attributes; categories have a `region`.
#[derive(Debug, Clone)]
struct Dataset {
    /// per item: (category index 0..3, num 0..50, month 1..12, has_num)
    items: Vec<(usize, i64, u8, bool)>,
}

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0usize..3, 0i64..50, 1u8..13, proptest::bool::weighted(0.9)), 1..25)
        .prop_map(|items| Dataset { items })
}

fn build_store(d: &Dataset) -> Store {
    let mut store = Store::new();
    let mut ttl = format!("@prefix ex: <{EX}> .\n@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n");
    // category backbone: cat0..cat2 with regions
    for (i, region) in [(0, "north"), (1, "south"), (2, "north")] {
        ttl.push_str(&format!("ex:cat{i} ex:region ex:{region} .\n"));
    }
    for (i, &(cat, num, month, has_num)) in d.items.iter().enumerate() {
        ttl.push_str(&format!("ex:item{i} a ex:Item ; ex:cat ex:cat{cat} "));
        ttl.push_str(&format!("; ex:date \"2021-{month:02}-10\"^^xsd:date "));
        if has_num {
            ttl.push_str(&format!("; ex:num {num} "));
        }
        ttl.push_str(".\n");
    }
    store.load_turtle(&ttl).unwrap();
    store
}

/// The query space: grouping choice × measuring choice × op × restrictions.
#[derive(Debug, Clone)]
struct QuerySpec {
    grouping: u8,      // 0 none, 1 cat, 2 cat/region, 3 month(date), 4 pair(cat, month)
    op: AggOp,
    measure_num: bool, // measure num vs identity-count
    m_restr: Option<i64>,
    root_cat: Option<usize>,
    having: Option<i64>,
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    (
        0u8..5,
        prop_oneof![
            Just(AggOp::Count),
            Just(AggOp::Sum),
            Just(AggOp::Avg),
            Just(AggOp::Min),
            Just(AggOp::Max)
        ],
        any::<bool>(),
        proptest::option::of(0i64..40),
        proptest::option::of(0usize..3),
        proptest::option::of(0i64..100),
    )
        .prop_map(|(grouping, op, measure_num, m_restr, root_cat, having)| QuerySpec {
            grouping,
            op,
            measure_num,
            m_restr,
            root_cat,
            having,
        })
}

fn build_query(spec: &QuerySpec) -> HifunQuery {
    let mut q = HifunQuery::new(spec.op);
    match spec.grouping {
        0 => {}
        1 => q = q.group_by(AttrPath::prop(p("cat"))),
        2 => q = q.group_by(AttrPath::props(&[&p("cat"), &p("region")])),
        3 => q = q.group_by(AttrPath::prop(p("date")).derived(DerivedFn::Month)),
        _ => {
            q = q
                .group_by(AttrPath::prop(p("cat")))
                .group_by(AttrPath::prop(p("date")).derived(DerivedFn::Month))
        }
    }
    // identity measuring only makes sense for COUNT
    let measure_num = spec.measure_num || spec.op != AggOp::Count;
    if measure_num {
        let mut rp = RestrictedPath::new(AttrPath::prop(p("num")));
        if let Some(t) = spec.m_restr {
            rp = rp.restricted(Restriction::cmp(CondOp::Ge, Term::integer(t)));
        }
        q = q.measure_restricted(rp);
    }
    if let Some(cat) = spec.root_cat {
        q = q.with_conditions(vec![Restriction::via(
            vec![Step::Prop(p("cat"))],
            CondOp::Eq,
            Term::iri(format!("{EX}cat{cat}")),
        )]);
    }
    if let Some(h) = spec.having {
        q = q.having(0, CondOp::Ge, Term::integer(h));
    }
    q
}

/// Canonical form of an answer: rows of rendered values, sorted. Numerics
/// are normalized through f64 so `900` and `900.0` compare equal.
fn canonical(rows: &[Vec<Option<Term>>]) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|c| match c {
                    None => "∅".to_owned(),
                    Some(t) => {
                        let v = Value::from_term(t);
                        match v.as_f64() {
                            Some(f) => format!("{:.6}", f),
                            None => v.render(),
                        }
                    }
                })
                .collect()
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn direct_eval_equals_translated_sparql(d in dataset_strategy(), spec in query_strategy()) {
        let store = build_store(&d);
        let q = build_query(&spec);
        let direct = hifun::direct::evaluate(&store, &q).unwrap();
        let sparql = hifun::translate::to_sparql(&q);
        let translated = Engine::new(&store)
            .query(&sparql)
            .unwrap_or_else(|e| panic!("{e}\n{sparql}"))
            .into_solutions()
            .unwrap();
        prop_assert_eq!(
            canonical(&direct.rows),
            canonical(&translated.rows),
            "query {} translated to:\n{}",
            q,
            sparql
        );
    }
}

#[test]
fn regression_identity_count_with_having() {
    // hand-picked case exercising COUNT(DISTINCT ?x1) + HAVING
    let d = Dataset { items: vec![(0, 5, 1, true), (0, 7, 2, true), (1, 9, 1, false)] };
    let store = build_store(&d);
    let q = HifunQuery::new(AggOp::Count)
        .group_by(AttrPath::prop(p("cat")))
        .having(0, CondOp::Ge, Term::integer(2));
    let direct = hifun::direct::evaluate(&store, &q).unwrap();
    let translated = Engine::new(&store)
        .query(&hifun::translate::to_sparql(&q))
        .unwrap()
        .into_solutions()
        .unwrap();
    assert_eq!(canonical(&direct.rows), canonical(&translated.rows));
    assert_eq!(direct.rows.len(), 1); // only cat0 has ≥ 2 items
}

#[test]
fn regression_avg_with_measure_restriction() {
    let d = Dataset { items: vec![(0, 10, 1, true), (0, 30, 1, true), (1, 50, 2, true)] };
    let store = build_store(&d);
    let q = HifunQuery::new(AggOp::Avg)
        .group_by(AttrPath::prop(p("cat")))
        .measure_restricted(
            RestrictedPath::new(AttrPath::prop(p("num")))
                .restricted(Restriction::cmp(CondOp::Ge, Term::integer(20))),
        );
    let direct = hifun::direct::evaluate(&store, &q).unwrap();
    let translated = Engine::new(&store)
        .query(&hifun::translate::to_sparql(&q))
        .unwrap()
        .into_solutions()
        .unwrap();
    assert_eq!(canonical(&direct.rows), canonical(&translated.rows));
}
