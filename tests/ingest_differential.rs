//! Ingest differential: the parallel bulk-ingest pipeline must produce a
//! store **identical** to the seed per-triple path — same term-id
//! assignment, same generation counter, same explicit and entailed
//! indexes — for every thread count, on random documents and on
//! adversarial chunk-boundary cases (escaped newlines inside literals,
//! CRLF line endings, BOMs, comments, a final unterminated line).
//!
//! Also covered: parse-error parity (absolute line numbers across chunk
//! boundaries), the streaming reader/path loaders, and the durable-store
//! bulk load including WAL recovery, whose replay runs through the bulk
//! pipeline without materializing until the end of recovery.

use rdf_analytics::model::ntriples;
use rdf_analytics::store::{
    FsyncPolicy, LoadOptions, PersistConfig, PersistentStore, Store, TermId,
};
use rdfa_prng::StdRng;
use std::path::PathBuf;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Full structural equality: term table (id-by-id), generation, explicit
/// SPO scan, entailed size, and probes of the POS and OSP permutations.
fn assert_same_store(reference: &Store, got: &Store, ctx: &str) {
    assert_eq!(reference.term_count(), got.term_count(), "{ctx}: term count");
    for i in 0..reference.term_count() {
        let id = TermId(i as u32);
        assert_eq!(reference.term(id), got.term(id), "{ctx}: term id {i}");
    }
    assert_eq!(reference.generation(), got.generation(), "{ctx}: generation");
    assert_eq!(reference.len(), got.len(), "{ctx}: explicit triple count");
    assert_eq!(reference.len_entailed(), got.len_entailed(), "{ctx}: entailed count");
    let a: Vec<_> = reference.iter_explicit().collect();
    let b: Vec<_> = got.iter_explicit().collect();
    assert_eq!(a, b, "{ctx}: explicit SPO scan");
    for &[s, p, o] in a.iter().take(64) {
        let pos_a: Vec<_> = reference.matching(None, Some(p), Some(o)).collect();
        let pos_b: Vec<_> = got.matching(None, Some(p), Some(o)).collect();
        assert_eq!(pos_a, pos_b, "{ctx}: POS probe for (?,{p:?},{o:?})");
        let osp_a: Vec<_> = reference.matching(Some(s), None, Some(o)).collect();
        let osp_b: Vec<_> = got.matching(Some(s), None, Some(o)).collect();
        assert_eq!(osp_a, osp_b, "{ctx}: OSP probe for ({s:?},?,{o:?})");
    }
}

// ---- random document generation ------------------------------------------

fn iri(rng: &mut StdRng) -> String {
    format!("<http://ex.org/r{}>", rng.gen_range(0u32..40))
}

fn predicate(rng: &mut StdRng) -> String {
    format!("<http://ex.org/p{}>", rng.gen_range(0u32..8))
}

fn object(rng: &mut StdRng) -> String {
    // literal lexical forms deliberately include escape sequences — most
    // importantly \n, which the writer encodes as TWO characters, so a
    // newline-split chunker that got this wrong would corrupt the term
    let lexicals = [
        "plain",
        r"line one\nline two",
        r#"say \"hi\""#,
        r"back\\slash",
        r"tab\there",
        "",
    ];
    match rng.gen_range(0..6) {
        0 => iri(rng),
        1 => format!("_:b{}", rng.gen_range(0u32..10)),
        2 => format!("\"{}\"", lexicals[rng.gen_range(0..lexicals.len())]),
        3 => format!("\"{}\"@en", lexicals[rng.gen_range(0..lexicals.len())]),
        4 => format!(
            "\"{}\"^^<http://www.w3.org/2001/XMLSchema#integer>",
            rng.gen_range(0i64..1000)
        ),
        _ => format!("\"{}\"", lexicals[rng.gen_range(0..lexicals.len())]),
    }
}

fn random_doc(rng: &mut StdRng, n_lines: usize) -> String {
    let mut out = String::new();
    for _ in 0..n_lines {
        match rng.gen_range(0..12) {
            0 => out.push_str("# a comment line\n"),
            1 => out.push('\n'),
            2 => out.push_str("   \n"),
            _ => {
                let (s, p, o) = (iri(rng), predicate(rng), object(rng));
                let ending = if rng.gen_bool(0.2) { "\r\n" } else { "\n" };
                out.push_str(&format!("{s} {p} {o} .{ending}"));
            }
        }
    }
    // sometimes leave the final triple unterminated by a newline
    if rng.gen_bool(0.3) {
        let (s, p, o) = (iri(rng), predicate(rng), object(rng));
        out.push_str(&format!("{s} {p} {o} ."));
    }
    out
}

// ---- the differentials ----------------------------------------------------

#[test]
fn bulk_load_matches_seed_across_thread_counts() {
    for case in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(case);
        let n_lines = rng.gen_range(0..120);
        let doc = random_doc(&mut rng, n_lines);
        let mut reference = Store::new();
        let n = reference.load_ntriples(&doc).expect("seed parse");
        for threads in THREADS {
            let mut bulk = Store::new();
            let stats = bulk
                .bulk_load_ntriples(&doc, LoadOptions::exact(threads))
                .expect("bulk parse");
            assert_eq!(stats.triples, n, "case {case} threads {threads}: triple count");
            assert_eq!(stats.threads, threads, "case {case}: reported threads");
            assert_same_store(&reference, &bulk, &format!("case {case} threads {threads}"));
        }
    }
}

#[test]
fn bulk_load_into_non_empty_store_matches_seed() {
    let preload = "<http://ex.org/r1> <http://ex.org/p0> \"already here\" .\n\
                   <http://ex.org/seed> <http://ex.org/p1> <http://ex.org/r2> .\n";
    for case in 100u64..112 {
        let mut rng = StdRng::seed_from_u64(case);
        // overlapping term/triple space with the preload, plus duplicates
        let n_lines = rng.gen_range(1..80);
        let doc = random_doc(&mut rng, n_lines);
        let mut reference = Store::new();
        reference.load_ntriples(preload).unwrap();
        reference.load_ntriples(&doc).unwrap();
        for threads in THREADS {
            let mut bulk = Store::new();
            bulk.load_ntriples(preload).unwrap();
            bulk.bulk_load_ntriples(&doc, LoadOptions::exact(threads)).unwrap();
            assert_same_store(&reference, &bulk, &format!("case {case} threads {threads}"));
        }
    }
}

#[test]
fn chunk_boundary_hazards() {
    // every line is short, so forcing 8 threads puts chunk boundaries
    // between almost every pair of lines; escaped \n stays two characters,
    // CRLF and comments sit at boundaries, the last line has no newline
    let doc = "\u{feff}<http://ex.org/a> <http://ex.org/p> \"one\\ntwo\\nthree\" .\r\n\
               # comment between triples\n\
               <http://ex.org/b> <http://ex.org/p> \"say \\\"hi\\\"\\n\" .\n\
               \n\
               <http://ex.org/c> <http://ex.org/p> \"trailing\\\\\" .\r\n\
               <http://ex.org/a> <http://ex.org/p> \"one\\ntwo\\nthree\" .\n\
               <http://ex.org/d> <http://ex.org/q> _:tail .";
    let mut reference = Store::new();
    let n = reference.load_ntriples(doc).expect("seed parse");
    assert_eq!(n, 5, "fixture should hold five triples (one duplicated)");
    for threads in THREADS {
        let mut bulk = Store::new();
        let stats =
            bulk.bulk_load_ntriples(doc, LoadOptions::exact(threads)).expect("bulk parse");
        assert_eq!(stats.triples, 5);
        assert_eq!(stats.added, 4, "duplicate triple must collapse");
        assert_same_store(&reference, &bulk, &format!("hazards threads {threads}"));
    }
}

#[test]
fn parse_errors_agree_with_seed_including_line_numbers() {
    // plant one malformed line at varying depths; the bulk loader must
    // report the same absolute line, lexeme and kind as the sequential
    // parser even when the bad line falls in a later chunk
    for case in 200u64..216 {
        let mut rng = StdRng::seed_from_u64(case);
        let n_lines = rng.gen_range(4..60);
        let mut doc = random_doc(&mut rng, n_lines);
        if !doc.ends_with('\n') {
            doc.push('\n');
        }
        let bad = ["<http://ex.org/unterminated", "\"open literal", "<a> <b> missing-dot"];
        doc.push_str(bad[(case % 3) as usize]);
        doc.push('\n');
        doc.push_str("<http://ex.org/x> <http://ex.org/p> \"after the error\" .\n");
        let seed_err = Store::new().load_ntriples(&doc).expect_err("seed must reject");
        for threads in THREADS {
            let mut bulk = Store::new();
            let bulk_err = bulk
                .bulk_load_ntriples(&doc, LoadOptions::exact(threads))
                .expect_err("bulk must reject");
            assert_eq!(seed_err, bulk_err, "case {case} threads {threads}");
            assert_eq!(bulk.len(), 0, "failed load must leave the store empty");
            assert_eq!(bulk.generation(), Store::new().generation(), "no generation bump");
        }
    }
}

#[test]
fn reader_and_path_loaders_match_in_memory_load() {
    let mut rng = StdRng::seed_from_u64(42);
    let doc = random_doc(&mut rng, 400);
    let mut reference = Store::new();
    reference.load_ntriples(&doc).unwrap();

    let mut via_reader = Store::new();
    let stats = via_reader
        .load_ntriples_reader(doc.as_bytes(), LoadOptions::exact(4))
        .expect("reader load");
    assert_same_store(&reference, &via_reader, "reader loader");

    let path = std::env::temp_dir().join(format!("rdfa-ingest-{}.nt", std::process::id()));
    std::fs::write(&path, &doc).unwrap();
    let mut via_path = Store::new();
    let path_stats =
        via_path.load_ntriples_path(&path, LoadOptions::exact(4)).expect("path load");
    std::fs::remove_file(&path).ok();
    assert_eq!(stats, path_stats, "reader and path loads must report identically");
    assert_same_store(&reference, &via_path, "path loader");
}

#[test]
fn path_loader_reports_absolute_error_lines() {
    let good = "<http://ex.org/s> <http://ex.org/p> <http://ex.org/o> .\n";
    let doc = format!("{}{}", good.repeat(7), "<http://ex.org/broken\n");
    let path = std::env::temp_dir().join(format!("rdfa-ingest-bad-{}.nt", std::process::id()));
    std::fs::write(&path, &doc).unwrap();
    let err = Store::new()
        .load_ntriples_path(&path, LoadOptions::exact(4))
        .expect_err("malformed file must be rejected");
    std::fs::remove_file(&path).ok();
    let msg = err.to_string();
    assert!(msg.contains("line 8"), "error must carry the absolute line: {msg}");
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdfa-ingest-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn durable_bulk_load_and_wal_recovery_match_sequential_replay() {
    let mut rng = StdRng::seed_from_u64(7);
    let docs: Vec<String> = (0..3).map(|_| random_doc(&mut rng, 60)).collect();

    // what the seed replay produced: per-triple inserts for every logged
    // document, inference materialized once at the end of recovery
    let mut reference = Store::new();
    for doc in &docs {
        for t in ntriples::parse(doc).unwrap().iter() {
            reference.insert(t);
        }
    }
    reference.materialize_inference();

    let dir = tmpdir("durable");
    let config = PersistConfig { fsync: FsyncPolicy::Always, ..PersistConfig::default() };
    {
        let mut pstore = PersistentStore::open(&dir, config.clone()).unwrap();
        for (i, doc) in docs.iter().enumerate() {
            let stats = pstore
                .bulk_load_ntriples(doc, LoadOptions::exact(1 + i))
                .expect("durable bulk load");
            assert!(stats.triples > 0, "doc {i} should hold triples");
        }
        // live handle: same explicit contents as the reference (generation
        // accounting differs only by the per-load materialize bumps)
        let a: Vec<_> = reference.iter_explicit().collect();
        let b: Vec<_> = pstore.iter_explicit().collect();
        assert_eq!(a, b, "live durable store contents");
    }
    // reopen: WAL replay runs the bulk pipeline, materializing once
    let reopened = PersistentStore::open(&dir, config).unwrap();
    assert_eq!(reopened.recovery().wal_records_replayed, 3);
    assert_same_store(&reference, &reopened, "recovered store");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn durable_path_load_survives_reopen() {
    let mut rng = StdRng::seed_from_u64(11);
    let doc = random_doc(&mut rng, 200);
    let path = std::env::temp_dir().join(format!("rdfa-ingest-seed-{}.nt", std::process::id()));
    std::fs::write(&path, &doc).unwrap();

    let mut reference = Store::new();
    reference.load_ntriples(&doc).unwrap();

    let dir = tmpdir("path");
    let config = PersistConfig { fsync: FsyncPolicy::Always, ..PersistConfig::default() };
    {
        let mut pstore = PersistentStore::open(&dir, config.clone()).unwrap();
        let stats = pstore.load_ntriples_path(&path, LoadOptions::exact(2)).unwrap();
        let a: Vec<_> = reference.iter_explicit().collect();
        let b: Vec<_> = pstore.iter_explicit().collect();
        assert_eq!(a, b, "live path-loaded store contents");
        assert_eq!(stats.added, b.len(), "fresh store: every distinct triple is new");
    }
    let reopened = PersistentStore::open(&dir, config).unwrap();
    let a: Vec<_> = reference.iter_explicit().collect();
    let b: Vec<_> = reopened.iter_explicit().collect();
    assert_eq!(a, b, "recovered path-loaded store contents");
    assert_eq!(reference.len_entailed(), reopened.len_entailed());
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bulk_graph_load_matches_seed_load_graph() {
    use rdf_analytics::datagen::{InvoicesGenerator, ProductsGenerator};
    let products = ProductsGenerator::new(400, 3).generate();
    let invoices = InvoicesGenerator::new(250, 5).generate();
    let mut reference = Store::new();
    reference.load_graph(&products);
    reference.load_graph(&invoices);
    for threads in THREADS {
        let mut bulk = Store::new();
        bulk.bulk_load_graph(&products, LoadOptions::exact(threads));
        bulk.bulk_load_graph(&invoices, LoadOptions::exact(threads));
        assert_same_store(&reference, &bulk, &format!("graph load threads {threads}"));
    }
}
