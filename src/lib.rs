//! # rdf-analytics — facade crate
//!
//! Re-exports the whole RDF-Analytics stack under one roof, mirroring the
//! architecture of the paper *"RDF-Analytics: Interactive Analytics over RDF
//! Knowledge Graphs"* (EDBT 2023):
//!
//! - [`model`] — RDF terms, triples, XSD values, Turtle/N-Triples I/O
//! - [`store`] — interned triple store with SPO/POS/OSP indexes and RDFS inference
//! - [`sparql`] — SPARQL 1.1 subset engine (aggregates, paths, subqueries)
//! - [`hifun`] — the HIFUN analytics language and its SPARQL translation
//! - [`facets`] — the core faceted-search-over-RDF interaction model
//! - [`analytics`] — the paper's contribution: faceted search extended with analytics
//! - [`viz`] — answer-frame rendering: tables, 2D charts, spiral & 3D layouts
//! - [`datagen`] — synthetic KGs and the simulated-endpoint latency model
//!
//! See `examples/quickstart.rs` for a end-to-end tour.

pub mod server;

pub use rdfa_core as analytics;
pub use rdfa_datagen as datagen;
pub use rdfa_facets as facets;
pub use rdfa_hifun as hifun;
pub use rdfa_model as model;
pub use rdfa_sparql as sparql;
pub use rdfa_store as store;
pub use rdfa_viz as viz;
