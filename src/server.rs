//! A minimal HTTP SPARQL endpoint — the server side of the paper's
//! architecture (Fig 6.1: the GUI talks to a backend that evaluates SPARQL
//! over the KG). Implemented on `std::net` only (HTTP/1.1 subset), enough
//! for the SPARQL protocol's common cases:
//!
//! | route | method | body/query | response |
//! |---|---|---|---|
//! | `/sparql?query=…` | GET | URL-encoded query | JSON (default), CSV or text via `Accept` |
//! | `/sparql` | POST | the query verbatim | same |
//! | `/update` | POST | an update request | `{"inserted":n,"deleted":m}` |
//! | `/void` | GET | — | the dataset's VoID description (N-Triples) |
//! | `/health` | GET | — | `ok` |
//!
//! The store lives behind an `RwLock`: queries share it, updates take the
//! write lock. `Server::start` binds an ephemeral port and serves on a
//! background thread until the handle is dropped — exactly what the tests
//! and the quickstart need; production deployments would front this with a
//! real HTTP stack.

use rdfa_sparql::{execute_update, Engine, QueryResults};
use rdfa_store::{Store, StoreStats};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// A running endpoint: drop it (or call [`Server::stop`]) to shut down.
pub struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `127.0.0.1:port` (0 = ephemeral) and serve the store.
    pub fn start(store: Store, port: u16) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let shared = Arc::new(RwLock::new(store));
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let _ = handle_connection(stream, &shared);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Server { addr, stop, handle: Some(handle) })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Request shutdown and join the serving thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(stream: TcpStream, store: &Arc<RwLock<Store>>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let target = parts.next().unwrap_or("/").to_owned();

    // headers
    let mut content_length = 0usize;
    let mut accept = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            match name.to_ascii_lowercase().as_str() {
                "content-length" => content_length = value.trim().parse().unwrap_or(0),
                "accept" => accept = value.trim().to_owned(),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    let body = String::from_utf8_lossy(&body).into_owned();

    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };

    let mut stream = reader.into_inner();
    let respond = |stream: &mut TcpStream, status: &str, ctype: &str, payload: &str| {
        let head = format!(
            "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            payload.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(payload.as_bytes())
    };

    match (method.as_str(), path) {
        ("GET", "/health") => respond(&mut stream, "200 OK", "text/plain", "ok"),
        ("GET", "/void") => {
            let guard = store.read().expect("store lock");
            let stats = StoreStats::gather(&guard);
            let void = stats.to_void_graph(&guard, "urn:rdfa:dataset");
            respond(
                &mut stream,
                "200 OK",
                "application/n-triples",
                &rdfa_model::ntriples::serialize(&void),
            )
        }
        ("GET", "/sparql") | ("POST", "/sparql") => {
            let query = if method == "POST" {
                body
            } else {
                match form_value(query_string, "query") {
                    Some(q) => q,
                    None => {
                        return respond(
                            &mut stream,
                            "400 Bad Request",
                            "text/plain",
                            "missing ?query=",
                        )
                    }
                }
            };
            let guard = store.read().expect("store lock");
            match Engine::new(&guard).query(&query) {
                Ok(QueryResults::Solutions(sols)) => {
                    if accept.contains("text/csv") {
                        respond(&mut stream, "200 OK", "text/csv", &sols.to_csv())
                    } else if accept.contains("text/plain") {
                        respond(&mut stream, "200 OK", "text/plain", &sols.to_table())
                    } else {
                        respond(
                            &mut stream,
                            "200 OK",
                            "application/sparql-results+json",
                            &sols.to_json(),
                        )
                    }
                }
                Ok(QueryResults::Graph(g)) => respond(
                    &mut stream,
                    "200 OK",
                    "application/n-triples",
                    &rdfa_model::ntriples::serialize(&g),
                ),
                Ok(QueryResults::Boolean(b)) => respond(
                    &mut stream,
                    "200 OK",
                    "application/sparql-results+json",
                    &format!("{{\"head\":{{}},\"boolean\":{b}}}"),
                ),
                Err(e) => respond(&mut stream, "400 Bad Request", "text/plain", &e.message),
            }
        }
        ("POST", "/update") => {
            let mut guard = store.write().expect("store lock");
            match execute_update(&mut guard, &body) {
                Ok(stats) => respond(
                    &mut stream,
                    "200 OK",
                    "application/json",
                    &format!("{{\"inserted\":{},\"deleted\":{}}}", stats.inserted, stats.deleted),
                ),
                Err(e) => respond(&mut stream, "400 Bad Request", "text/plain", &e.message),
            }
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "no such route"),
    }
}

/// Extract and percent-decode one value from a `k=v&k2=v2` query string.
fn form_value(query_string: &str, key: &str) -> Option<String> {
    for pair in query_string.split('&') {
        if let Some((k, v)) = pair.split_once('=') {
            if k == key {
                return Some(percent_decode(v));
            }
        }
    }
    None
}

/// Percent-decoding (plus `+` → space) for URL query components.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h).ok().and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encoding for building request URLs in tests and clients.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_store() -> Store {
        let mut s = Store::new();
        s.load_turtle(
            r#"@prefix ex: <http://example.org/> .
               ex:l1 a ex:Laptop ; ex:price 900 .
               ex:l2 a ex:Laptop ; ex:price 1000 .
            "#,
        )
        .unwrap();
        s
    }

    fn http(addr: std::net::SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn get(addr: std::net::SocketAddr, path: &str, accept: &str) -> String {
        http(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: x\r\nAccept: {accept}\r\n\r\n"),
        )
    }

    fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
        http(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn health_and_404() {
        let server = Server::start(demo_store(), 0).unwrap();
        assert!(get(server.addr(), "/health", "*/*").contains("ok"));
        assert!(get(server.addr(), "/nope", "*/*").starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn get_query_returns_json() {
        let server = Server::start(demo_store(), 0).unwrap();
        let q = percent_encode(
            "PREFIX ex: <http://example.org/> SELECT (COUNT(?x) AS ?n) WHERE { ?x a ex:Laptop . }",
        );
        let resp = get(server.addr(), &format!("/sparql?query={q}"), "*/*");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("sparql-results+json"));
        assert!(resp.contains("\"value\":\"2\""), "{resp}");
    }

    #[test]
    fn post_query_with_csv_accept() {
        let server = Server::start(demo_store(), 0).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let body = "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Laptop . } ORDER BY ?x";
        stream
            .write_all(
                format!(
                    "POST /sparql HTTP/1.1\r\nHost: x\r\nAccept: text/csv\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.contains("text/csv"));
        assert!(resp.contains("http://example.org/l1"));
    }

    #[test]
    fn update_mutates_store() {
        let server = Server::start(demo_store(), 0).unwrap();
        let resp = post(
            server.addr(),
            "/update",
            "PREFIX ex: <http://example.org/> INSERT DATA { ex:l3 a ex:Laptop . }",
        );
        assert!(resp.contains("\"inserted\":1"), "{resp}");
        let q = percent_encode(
            "PREFIX ex: <http://example.org/> SELECT (COUNT(?x) AS ?n) WHERE { ?x a ex:Laptop . }",
        );
        let resp = get(server.addr(), &format!("/sparql?query={q}"), "*/*");
        assert!(resp.contains("\"value\":\"3\""), "{resp}");
    }

    #[test]
    fn bad_query_is_400() {
        let server = Server::start(demo_store(), 0).unwrap();
        let resp = get(server.addr(), "/sparql?query=NOT+SPARQL", "*/*");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    }

    #[test]
    fn void_route_describes_dataset() {
        let server = Server::start(demo_store(), 0).unwrap();
        let resp = get(server.addr(), "/void", "*/*");
        assert!(resp.contains("void#triples"), "{resp}");
    }

    #[test]
    fn ask_returns_boolean_json() {
        let server = Server::start(demo_store(), 0).unwrap();
        let q = percent_encode("PREFIX ex: <http://example.org/> ASK WHERE { ?x ex:price 900 . }");
        let resp = get(server.addr(), &format!("/sparql?query={q}"), "*/*");
        assert!(resp.contains("\"boolean\":true"), "{resp}");
    }

    #[test]
    fn percent_roundtrip() {
        let s = "SELECT * WHERE { ?s ?p \"a b+c%\" . }";
        assert_eq!(percent_decode(&percent_encode(s)), s);
    }
}
