//! A hardened HTTP SPARQL endpoint — the server side of the paper's
//! architecture (Fig 6.1: the GUI talks to a backend that evaluates SPARQL
//! over the KG). Implemented on `std::net` only (HTTP/1.1 subset), enough
//! for the SPARQL protocol's common cases:
//!
//! | route | method | body/query | response |
//! |---|---|---|---|
//! | `/v1/query?query=…` | GET | URL-encoded query | negotiated via `Accept` (see below) |
//! | `/v1/query` | POST | the query verbatim | same |
//! | `/v1/update` | POST | an update request | `{"inserted":n,"deleted":m}` |
//! | `/sparql`, `/update` | GET/POST | legacy aliases of the `/v1` routes | same, plus a `Deprecation` header |
//! | `/v1/facets?class=…&budget_ms=…` | GET | facet markers for a class extension | JSON, possibly stale (see below) |
//! | `/void` | GET | — | the dataset's VoID description (N-Triples) |
//! | `/health` | GET | — | `ok` |
//! | `/healthz` | GET | — | JSON: snapshot generation, in-flight count, shed counter, WAL lag, triple count |
//!
//! Content negotiation on `/v1/query`: `Accept: text/csv` → SPARQL CSV
//! results, `Accept: text/plain` → an aligned text table, anything else →
//! `application/sparql-results+json` (the default).
//!
//! # Snapshot-isolated reads
//!
//! Every read request (`/v1/query`, `/v1/facets`, `/void`, `/healthz`)
//! starts by taking a [`Snapshot`] — an atomic `Arc` clone of the current
//! published store, after which **no lock is held** for the rest of the
//! request. A reader can never block behind an update, never observe a
//! half-applied batch, and never be poisoned by a panicking writer.
//!
//! Updates run inside a [`SnapshotStore`] write transaction: the handler
//! mutates a private copy-on-write working store (writers are serialized
//! by a mutex readers never touch) and publishes the whole batch with one
//! pointer swap on success. A failed or panicking update publishes
//! nothing — concurrent readers keep the previous generation throughout.
//!
//! On the durable path the WAL append and the publish happen under one
//! [`Journal`] lock hold ([`Journal::log_mutations_then`]), and shutdown /
//! [`Server::checkpoint`] capture their store view under that same lock
//! ([`Journal::checkpoint_with`]) — so an acknowledged batch is always in
//! the checkpoint or in the WAL, never compacted away *and* forgotten.
//! Checkpoints read a snapshot: they no longer pause queries at all.
//!
//! # Admission control
//!
//! Overload is shed at two gates, outermost first: the bounded accept
//! queue (overflow → immediate `503`), and a per-server in-flight budget
//! ([`ServerConfig::max_in_flight`]) on the work routes — a request over
//! budget is answered `503` with `Retry-After` instead of queueing behind
//! work the server cannot finish in time. Health and stats routes bypass
//! the budget so orchestrators can always probe a saturated server. Shed
//! requests are counted and reported by `/healthz`.
//!
//! `/v1/facets` degrades before it sheds: when the marker computation
//! would exceed its deadline (tunable per request with `?budget_ms=`), a
//! cached marker set from a superseded store generation is served instead,
//! flagged with `X-Facet-Stale: <generation>`. `?budget_ms=0` means
//! "cached only": serve any cached generation immediately, never compute.
//!
//! Other robustness ([`ServerConfig`]): a fixed pool of worker threads
//! drains the bounded accept queue, every connection gets read/write
//! timeouts (stalled clients → `408` instead of a wedged worker),
//! `Content-Length` is capped *before* the body buffer is allocated
//! (oversized → `413`), queries run under [`EvalLimits`] — rows, time,
//! *and bytes*: per-request memory accounting trips a `503` before a
//! runaway join can take the process down — and a panicking handler is
//! caught and answered with a `500` without taking the worker down.
//! Errors are JSON bodies: `{"error":{"code":…,"message":…}}`.
//!
//! Shutdown ordering: stop accepting first, join the acceptor (dropping
//! the queue sender), let the workers drain every already-accepted
//! connection out of the bounded queue, join them, and only then
//! checkpoint — so no request is dropped mid-flight and the checkpoint
//! sees the final state.

use rdfa_facets::{
    notation, ClassMarker, FacetCache, FacetError, FacetOptions, PropertyFacet,
    State as FacetState,
};
use rdfa_sparql::{
    execute_update, execute_update_recording, CancelFlag, Engine, EvalLimits, QueryResults,
};
use rdfa_store::{
    Journal, PersistError, PersistentStore, Snapshot, SnapshotStore, Store, StoreStats,
};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Tunables for the endpoint's robustness behaviour.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the accept queue.
    pub workers: usize,
    /// Accepted connections waiting for a worker; overflow is answered `503`.
    pub queue_capacity: usize,
    /// Per-connection socket read timeout (stalled request → `408`).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout: a reader draining a streamed
    /// response slower than this is disconnected (shed), not waited on.
    pub write_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub keep_alive_timeout: Duration,
    /// Requests served on one connection before the server closes it
    /// (`Connection: close` on the last response); bounds how long a
    /// single client can monopolize a worker. `0` means 1.
    pub max_requests_per_conn: usize,
    /// Target chunk size for streamed (chunked transfer-encoding) query
    /// results — the serialization buffer never grows past roughly this.
    pub stream_chunk_bytes: usize,
    /// Largest `Content-Length` accepted; larger requests → `413`.
    pub max_body_bytes: usize,
    /// Resource limits applied to every query evaluation (`503` when hit).
    /// Its `deadline` also bounds `/v1/facets` marker computation, and its
    /// `max_memory_bytes` caps what a single evaluation may materialize.
    pub limits: EvalLimits,
    /// Capacity of the generation-keyed facet cache behind `/v1/facets`
    /// (marker sets, not bytes); `0` disables caching.
    pub facet_cache_entries: usize,
    /// Most requests served simultaneously on the work routes; the excess
    /// is shed with `503` + `Retry-After`. Health/stats routes are exempt.
    /// `0` disables the budget (in-flight is still counted for `/healthz`).
    pub max_in_flight: usize,
    /// Enable test-only routes (`/panic`, `/slow`). Off by default.
    pub debug_routes: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            keep_alive_timeout: Duration::from_secs(5),
            max_requests_per_conn: 100,
            stream_chunk_bytes: 64 << 10, // 64 KiB
            max_body_bytes: 1 << 20,      // 1 MiB
            limits: EvalLimits::interactive(),
            facet_cache_entries: rdfa_facets::DEFAULT_FACET_CACHE_ENTRIES,
            max_in_flight: 64,
            debug_routes: false,
        }
    }
}

/// The store behind the endpoint: a lock-free-for-readers [`SnapshotStore`],
/// plus a [`Journal`] when the endpoint is durable (mutations WAL-logged
/// under the same lock hold that publishes them).
pub struct SharedStore {
    store: SnapshotStore,
    journal: Option<Journal>,
}

impl SharedStore {
    /// An in-memory store with no durability.
    pub fn plain(store: Store) -> SharedStore {
        SharedStore { store: SnapshotStore::new(store), journal: None }
    }

    /// A durable store, split into its snapshot half (published state) and
    /// its journal half (WAL + checkpoints), so readers never queue behind
    /// an fsync.
    pub fn durable(store: PersistentStore) -> SharedStore {
        let (store, journal, _recovery) = store.into_parts();
        SharedStore { store: SnapshotStore::new(store), journal: Some(journal) }
    }

    /// The current published snapshot — an atomic `Arc` clone; no lock is
    /// held after this returns.
    pub fn snapshot(&self) -> Snapshot {
        self.store.snapshot()
    }

    /// The snapshot store itself (for write transactions in tests/tools).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// The journal, when durable.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Checkpoint the durable store (`Ok(None)` for a plain one). The store
    /// view is captured under the journal lock, so no acknowledged batch
    /// can be both compacted away and lost; readers proceed throughout.
    pub fn checkpoint(&self) -> Result<Option<u64>, PersistError> {
        match &self.journal {
            None => Ok(None),
            Some(j) => j.checkpoint_with(|| self.store.snapshot()).map(Some),
        }
    }
}

/// Everything a worker needs to serve a request.
struct Ctx {
    shared: Arc<SharedStore>,
    facet_cache: FacetCache,
    config: ServerConfig,
    /// Requests currently being served on the work routes.
    in_flight: AtomicUsize,
    /// Requests turned away by the in-flight budget since startup.
    shed: AtomicU64,
    /// Set at the start of shutdown: in-flight evaluations observe it via
    /// their [`CancelFlag`] watcher and stop promptly instead of running
    /// to completion against a server that will discard the answer.
    draining: Arc<AtomicBool>,
    /// State for the jittered `Retry-After` values (splitmix-style hash of
    /// an advancing counter — no locking, no external RNG dependency).
    retry_seed: AtomicU64,
}

/// A jittered `Retry-After` header (1–3 s) so that a fleet of clients shed
/// at the same instant does not re-stampede the server on the same tick.
fn retry_after_header(ctx: &Ctx) -> String {
    let mut x = ctx.retry_seed.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    format!("Retry-After: {}", 1 + x % 3)
}

/// An admitted work-route request; releases its in-flight slot on drop —
/// including when the handler panics.
struct Admitted<'a>(&'a Ctx);

impl Drop for Admitted<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Claim an in-flight slot, or `None` when the budget is exhausted (the
/// caller sheds the request). With the budget disabled (`max_in_flight: 0`)
/// admission always succeeds but the gauge still moves for `/healthz`.
fn admit(ctx: &Ctx) -> Option<Admitted<'_>> {
    let budget = ctx.config.max_in_flight;
    let prev = ctx.in_flight.fetch_add(1, Ordering::Relaxed);
    if budget != 0 && prev >= budget {
        ctx.in_flight.fetch_sub(1, Ordering::Relaxed);
        ctx.shed.fetch_add(1, Ordering::Relaxed);
        return None;
    }
    Some(Admitted(ctx))
}

/// The shed response: `503` with a JSON error body and a jittered
/// `Retry-After`, so well-behaved clients back off instead of hammering a
/// saturated server — and don't all come back on the same second.
fn write_shed(wire: &mut Wire<'_>, ctx: &Ctx, extra: &[String]) -> std::io::Result<()> {
    let mut headers = vec![retry_after_header(ctx)];
    headers.extend(extra.iter().cloned());
    write_response_headed(
        wire,
        "503 Service Unavailable",
        "application/json",
        &headers,
        &json_error(503, "server at capacity: in-flight request budget exhausted"),
    )
}

/// A running endpoint: drop it (or call [`Server::stop`]) to shut down.
pub struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    /// The accept loop — joined *first* on shutdown so no new connections
    /// enter the queue while the workers drain it.
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Bind `127.0.0.1:port` (0 = ephemeral) and serve with default config.
    pub fn start(store: Store, port: u16) -> std::io::Result<Server> {
        Server::start_with(store, port, ServerConfig::default())
    }

    /// Bind and serve with an explicit [`ServerConfig`].
    pub fn start_with(store: Store, port: u16, config: ServerConfig) -> std::io::Result<Server> {
        Server::serve(Arc::new(SharedStore::plain(store)), port, config)
    }

    /// Serve a durable store: `/update` is WAL-logged before it is
    /// acknowledged, `/healthz` reports generation and WAL lag, and
    /// shutdown checkpoints after draining in-flight requests.
    pub fn start_durable(
        store: PersistentStore,
        port: u16,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::serve(Arc::new(SharedStore::durable(store)), port, config)
    }

    fn serve(
        shared: Arc<SharedStore>,
        port: u16,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue_capacity = config.queue_capacity;
        let read_timeout = config.read_timeout;
        let write_timeout = config.write_timeout;
        let worker_count = config.workers;
        let ctx = Arc::new(Ctx {
            shared,
            facet_cache: FacetCache::new(config.facet_cache_entries),
            config,
            in_flight: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            draining: Arc::new(AtomicBool::new(false)),
            retry_seed: AtomicU64::new(0x243F_6A88_85A3_08D3),
        });
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::new();
        for i in 0..worker_count.max(1) {
            let rx = Arc::clone(&rx);
            let ctx = Arc::clone(&ctx);
            let handle = std::thread::Builder::new()
                .name(format!("rdfa-worker-{i}"))
                .spawn(move || loop {
                    // hold the lock only while receiving, not while serving;
                    // this Mutex CAN be poisoned by a panicking sibling and
                    // the queue is still valid then, so recover — unlike the
                    // store, which no longer has a lock to poison at all
                    let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    match next {
                        Ok(stream) => serve_connection(stream, &ctx),
                        Err(_) => break, // acceptor gone and queue drained: shutdown
                    }
                })?;
            workers.push(handle);
        }

        let stop2 = Arc::clone(&stop);
        let accept_ctx = Arc::clone(&ctx);
        let acceptor = std::thread::Builder::new().name("rdfa-accept".to_owned()).spawn(
            move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_read_timeout(Some(read_timeout));
                            let _ = stream.set_write_timeout(Some(write_timeout));
                            match tx.try_send(stream) {
                                Ok(()) => {}
                                Err(mpsc::TrySendError::Full(mut rejected)) => {
                                    let _ = write_response_raw(
                                        &mut rejected,
                                        "503 Service Unavailable",
                                        "application/json",
                                        &[retry_after_header(&accept_ctx)],
                                        &json_error(503, "server busy: connection queue full"),
                                    );
                                }
                                Err(mpsc::TrySendError::Disconnected(_)) => break,
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                // dropping `tx` here unblocks the workers' `recv` so they
                // exit — but only after draining every queued connection
            },
        )?;
        Ok(Server { addr, stop, acceptor: Some(acceptor), workers, ctx })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The store behind the endpoint.
    pub fn shared(&self) -> &Arc<SharedStore> {
        &self.ctx.shared
    }

    /// Requests currently being served on the work routes.
    pub fn in_flight(&self) -> usize {
        self.ctx.in_flight.load(Ordering::Relaxed)
    }

    /// Requests shed by the in-flight budget since startup.
    pub fn shed_requests(&self) -> u64 {
        self.ctx.shed.load(Ordering::Relaxed)
    }

    /// Checkpoint the durable store now (no-op for a plain store). Safe to
    /// call while serving: readers proceed, updates briefly queue on the
    /// journal.
    pub fn checkpoint(&self) -> Result<Option<u64>, PersistError> {
        self.ctx.shared.checkpoint()
    }

    /// Request shutdown and join the serving threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.acceptor.is_none() && self.workers.is_empty() {
            return; // already shut down (stop() followed by Drop)
        }
        // 0. signal drain: in-flight query evaluations observe this via
        //    their CancelFlag watcher and stop early, so step 2's joins
        //    don't wait out long-running queries whose answers nobody
        //    will receive
        self.ctx.draining.store(true, Ordering::Relaxed);
        // 1. stop accepting: joining the acceptor first guarantees nothing
        //    new enters the queue after this point, and drops the sender
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // 2. workers finish their in-flight request, drain what the
        //    acceptor already queued, then see the closed channel and exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // 3. no request can be running: checkpoint the final state
        if let Err(e) = self.ctx.shared.checkpoint() {
            eprintln!("rdfa-server: checkpoint on shutdown failed: {e}");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run one connection to completion; a panic inside the handler is answered
/// with a `500` on a pre-cloned stream and does not take the worker down.
/// The panic also cannot corrupt shared state: an uncommitted write
/// transaction rolls back on unwind, and the admission slot releases on
/// drop.
fn serve_connection(stream: TcpStream, ctx: &Arc<Ctx>) {
    let spare = stream.try_clone().ok();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_connection(stream, ctx)
    }));
    if outcome.is_err() {
        if let Some(mut out) = spare {
            let _ = write_response_raw(
                &mut out,
                "500 Internal Server Error",
                "application/json",
                &[],
                &json_error(500, "internal server error: handler panicked"),
            );
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Per-response connection state: where to write, what framing the request
/// allows, and whether the connection survives the response.
struct Wire<'a> {
    stream: &'a mut TcpStream,
    /// The request was HTTP/1.1, so chunked transfer-encoding is allowed.
    http11: bool,
    /// Keep the connection open after this response. Cleared by error
    /// responses and `Connection: close` requests; the response's
    /// `Connection` header always reflects the final value.
    keep_alive: bool,
    /// Target chunk size for streamed bodies.
    chunk_bytes: usize,
}

/// Serve requests off one connection until the client closes, asks to
/// close, errors, idles past [`ServerConfig::keep_alive_timeout`], or hits
/// the [`ServerConfig::max_requests_per_conn`] cap.
fn handle_connection(stream: TcpStream, ctx: &Ctx) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let max_requests = ctx.config.max_requests_per_conn.max(1);
    for served in 0..max_requests {
        let last = served + 1 == max_requests;
        if !handle_request(&mut reader, ctx, served, last)? {
            break;
        }
    }
    Ok(())
}

/// Read, dispatch, and answer one request. Returns whether the connection
/// stays open for another.
fn handle_request(
    reader: &mut BufReader<TcpStream>,
    ctx: &Ctx,
    served: usize,
    last: bool,
) -> std::io::Result<bool> {
    let config = &ctx.config;
    // Re-arm the read timeout every request: between keep-alive requests
    // the idle budget applies, and a query's DisconnectWatcher may have
    // shortened SO_RCVTIMEO on the shared socket in the meantime.
    let idle = if served == 0 { config.read_timeout } else { config.keep_alive_timeout };
    let _ = reader.get_ref().set_read_timeout(Some(idle));
    let mut request_line = String::new();
    match reader.read_line(&mut request_line) {
        Ok(0) => return Ok(false), // client closed between requests
        Ok(_) => {}
        Err(e) if is_timeout(&e) => {
            if served == 0 {
                // never sent a request at all: say so before hanging up
                write_response_raw(
                    reader.get_mut(),
                    "408 Request Timeout",
                    "application/json",
                    &[],
                    &json_error(408, "timed out reading the request"),
                )?;
            }
            return Ok(false); // idle keep-alive expiry: close silently
        }
        Err(e) => return Err(e),
    }
    let _ = reader.get_ref().set_read_timeout(Some(config.read_timeout));
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/") => {
            (m.to_owned(), t.to_owned(), v.to_owned())
        }
        _ => {
            write_response_raw(
                reader.get_mut(),
                "400 Bad Request",
                "application/json",
                &[],
                &json_error(400, "malformed request line"),
            )?;
            return Ok(false);
        }
    };
    let http11 = version != "HTTP/1.0";

    // headers
    let mut content_length = 0usize;
    let mut accept = String::new();
    let mut connection = String::new();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                write_response_raw(
                    reader.get_mut(),
                    "408 Request Timeout",
                    "application/json",
                    &[],
                    &json_error(408, "timed out reading request headers"),
                )?;
                return Ok(false);
            }
            Err(e) => return Err(e),
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            match name.to_ascii_lowercase().as_str() {
                "content-length" => match value.trim().parse::<usize>() {
                    Ok(n) => content_length = n,
                    Err(_) => {
                        write_response_raw(
                            reader.get_mut(),
                            "400 Bad Request",
                            "application/json",
                            &[],
                            &json_error(400, "invalid Content-Length"),
                        )?;
                        return Ok(false);
                    }
                },
                "accept" => accept = value.trim().to_owned(),
                "connection" => connection = value.trim().to_ascii_lowercase(),
                _ => {}
            }
        }
    }

    // cap the declared body size BEFORE allocating the buffer: a client
    // claiming Content-Length: 999999999 must not make us reserve a gig
    if content_length > config.max_body_bytes {
        write_response_raw(
            reader.get_mut(),
            "413 Payload Too Large",
            "application/json",
            &[],
            &json_error(
                413,
                &format!(
                    "request body of {content_length} bytes exceeds the {} byte limit",
                    config.max_body_bytes
                ),
            ),
        )?;
        return Ok(false);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        if let Err(e) = reader.read_exact(&mut body) {
            if is_timeout(&e) {
                write_response_raw(
                    reader.get_mut(),
                    "408 Request Timeout",
                    "application/json",
                    &[],
                    &json_error(408, "timed out reading the request body"),
                )?;
                return Ok(false);
            }
            return Err(e);
        }
    }
    let body = String::from_utf8_lossy(&body).into_owned();

    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };

    // HTTP/1.1 defaults to keep-alive unless the client opts out;
    // HTTP/1.0 always closes (we don't honour 1.0 keep-alive extensions)
    let keep_alive = http11 && !connection.contains("close") && !last;
    let mut wire = Wire {
        stream: reader.get_mut(),
        http11,
        keep_alive,
        chunk_bytes: config.stream_chunk_bytes,
    };

    let outcome = match (method.as_str(), path) {
        ("GET", "/health") => write_response(&mut wire, "200 OK", "text/plain", "ok"),
        ("GET", "/healthz") => {
            // exempt from admission: a saturated server must stay probeable
            let snap = ctx.shared.snapshot();
            let in_flight = ctx.in_flight.load(Ordering::Relaxed);
            let shed = ctx.shed.load(Ordering::Relaxed);
            let payload = match ctx.shared.journal() {
                None => format!(
                    "{{\"status\":\"ok\",\"durable\":false,\"snapshot_generation\":{},\"in_flight\":{in_flight},\"shed\":{shed},\"triples\":{},\"dirty\":{}}}",
                    snap.generation(),
                    snap.len(),
                    snap.is_dirty()
                ),
                Some(journal) => {
                    let status = if journal.is_dead() { "degraded" } else { "ok" };
                    format!(
                        "{{\"status\":\"{status}\",\"durable\":true,\"generation\":{},\"wal_records\":{},\"snapshot_generation\":{},\"in_flight\":{in_flight},\"shed\":{shed},\"triples\":{},\"dirty\":{}}}",
                        journal.generation(),
                        journal.wal_records(),
                        snap.generation(),
                        snap.len(),
                        snap.is_dirty()
                    )
                }
            };
            write_response(&mut wire, "200 OK", "application/json", &payload)
        }
        ("GET", "/panic") if config.debug_routes => {
            panic!("deliberate panic for robustness testing")
        }
        ("GET", "/slow") if config.debug_routes => {
            // an admission-controlled request that just holds its slot —
            // deterministic saturation for tests and the concurrent bench
            match admit(ctx) {
                None => write_shed(&mut wire, ctx, &[]),
                Some(_slot) => {
                    let ms = form_value(query_string, "ms")
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(100);
                    std::thread::sleep(Duration::from_millis(ms));
                    write_response(&mut wire, "200 OK", "text/plain", "ok")
                }
            }
        }
        ("GET", "/void") => match admit(ctx) {
            None => write_shed(&mut wire, ctx, &[]),
            Some(_slot) => {
                let snap = ctx.shared.snapshot();
                let stats = StoreStats::gather(&snap);
                let void = stats.to_void_graph(&snap, "urn:rdfa:dataset");
                write_response(
                    &mut wire,
                    "200 OK",
                    "application/n-triples",
                    &rdfa_model::ntriples::serialize(&void),
                )
            }
        },
        ("GET", "/v1/query") | ("POST", "/v1/query") | ("GET", "/sparql") | ("POST", "/sparql") => {
            // `/sparql` is the pre-v1 alias: same behaviour, plus headers
            // steering clients to the versioned route
            let extra = legacy_headers(path, "/sparql", "/v1/query");
            match admit(ctx) {
                None => write_shed(&mut wire, ctx, extra),
                Some(_slot) => {
                    let query = if method == "POST" {
                        Some(body)
                    } else {
                        form_value(query_string, "query")
                    };
                    match query {
                        Some(q) => serve_query(&mut wire, ctx, &accept, &q, extra),
                        None => write_response_headed(
                            &mut wire,
                            "400 Bad Request",
                            "application/json",
                            extra,
                            &json_error(400, "missing ?query="),
                        ),
                    }
                }
            }
        }
        ("POST", "/v1/update") | ("POST", "/update") => {
            let extra = legacy_headers(path, "/update", "/v1/update");
            match admit(ctx) {
                None => write_shed(&mut wire, ctx, extra),
                Some(_slot) => serve_update(&mut wire, &ctx.shared, &body, extra),
            }
        }
        ("GET", "/v1/facets") => match admit(ctx) {
            None => write_shed(&mut wire, ctx, &[]),
            Some(_slot) => serve_facets(&mut wire, ctx, query_string),
        },
        ("GET", "/v1/facets/stats") => {
            let st = ctx.facet_cache.stats();
            write_response(
                &mut wire,
                "200 OK",
                "application/json",
                &format!(
                    "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"stale_hits\":{},\"entries\":{},\"capacity\":{}}}",
                    st.hits, st.misses, st.evictions, st.stale_hits, st.entries, st.capacity
                ),
            )
        }
        _ => write_response(
            &mut wire,
            "404 Not Found",
            "application/json",
            &json_error(404, "no such route"),
        ),
    };
    let keep = wire.keep_alive;
    outcome?;
    Ok(keep)
}

/// Extra response headers for a legacy route alias: a `Deprecation` marker
/// plus a `Link` to the versioned successor. Empty for the `/v1` routes.
fn legacy_headers(path: &str, legacy: &'static str, successor: &'static str) -> &'static [String] {
    use std::sync::OnceLock;
    static NONE: Vec<String> = Vec::new();
    static CACHE: OnceLock<Mutex<std::collections::HashMap<&'static str, &'static [String]>>> =
        OnceLock::new();
    if path != legacy {
        return &NONE;
    }
    let cache = CACHE.get_or_init(|| Mutex::new(std::collections::HashMap::new()));
    let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
    cache.entry(legacy).or_insert_with(|| {
        let headers = vec![
            "Deprecation: true".to_owned(),
            format!("Link: <{successor}>; rel=\"successor-version\""),
        ];
        Box::leak(headers.into_boxed_slice())
    })
}

/// Watches a connection while its query evaluates: a detached thread peeks
/// the socket every ~25 ms and sets the query's [`CancelFlag`] when the
/// client is gone (EOF / hard error) or the server starts draining.
/// Dropping the watcher stops it; the thread exits within one poll.
struct DisconnectWatcher {
    done: Arc<AtomicBool>,
}

impl DisconnectWatcher {
    const POLL: Duration = Duration::from_millis(25);

    fn spawn(
        stream: &TcpStream,
        cancel: CancelFlag,
        draining: Arc<AtomicBool>,
    ) -> DisconnectWatcher {
        let done = Arc::new(AtomicBool::new(false));
        if let Ok(peer) = stream.try_clone() {
            // SO_RCVTIMEO lives on the socket shared with the request
            // stream, so this short poll timeout leaks onto it; the
            // keep-alive loop re-arms the proper timeout before every
            // request read, so the worst case is one early idle close
            let _ = peer.set_read_timeout(Some(Self::POLL));
            let done2 = Arc::clone(&done);
            let _ = std::thread::Builder::new().name("rdfa-cancel-watch".to_owned()).spawn(
                move || {
                    let mut byte = [0u8; 1];
                    while !done2.load(Ordering::Relaxed) {
                        if draining.load(Ordering::Relaxed) {
                            cancel.cancel();
                            return;
                        }
                        match peer.peek(&mut byte) {
                            // EOF: the client hung up — stop the query
                            Ok(0) => {
                                cancel.cancel();
                                return;
                            }
                            // buffered bytes (a pipelined request): alive
                            Ok(_) => std::thread::sleep(Self::POLL),
                            // poll timeout: alive, nothing buffered
                            Err(e) if is_timeout(&e) => {}
                            // connection reset or worse
                            Err(_) => {
                                cancel.cancel();
                                return;
                            }
                        }
                    }
                },
            );
        }
        DisconnectWatcher { done }
    }
}

impl Drop for DisconnectWatcher {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
    }
}

/// Which streaming serialization a solutions response uses.
enum StreamFormat {
    Json,
    Csv,
}

/// Stream a solution table as a chunked HTTP/1.1 response: rows are
/// serialized straight into a bounded chunk buffer, so peak serialization
/// memory is O(chunk), not O(body) — a `LIMIT`-less SELECT over millions
/// of rows never builds a whole-body `String`. HTTP/1.0 clients (no
/// chunked support) get a buffered `Content-Length` body instead.
fn stream_solutions(
    wire: &mut Wire<'_>,
    ctype: &str,
    extra: &[String],
    sols: &rdfa_sparql::Solutions,
    format: StreamFormat,
) -> std::io::Result<()> {
    if !wire.http11 {
        let body = match format {
            StreamFormat::Json => sols.to_json(),
            StreamFormat::Csv => sols.to_csv(),
        };
        return write_response_headed(wire, "200 OK", ctype, extra, &body);
    }
    let conn = if wire.keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {ctype}\r\nTransfer-Encoding: chunked\r\nConnection: {conn}\r\n"
    );
    for h in extra {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    wire.stream.write_all(head.as_bytes())?;
    let mut out = ChunkedWriter::new(wire.stream, wire.chunk_bytes);
    match format {
        StreamFormat::Json => sols.write_json(&mut out)?,
        StreamFormat::Csv => sols.write_csv(&mut out)?,
    }
    out.finish()
}

/// An [`std::io::Write`] framing bytes as HTTP/1.1 chunked
/// transfer-encoding, buffering roughly `chunk_bytes` per socket write so
/// row-at-a-time serializers don't pay a syscall per row. A slow reader
/// makes `write_all` trip the socket's write timeout, which aborts the
/// response (and the connection) instead of blocking the worker
/// indefinitely. [`ChunkedWriter::finish`] emits the terminating chunk.
struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
    buf: Vec<u8>,
    chunk_bytes: usize,
}

impl<'a> ChunkedWriter<'a> {
    fn new(stream: &'a mut TcpStream, chunk_bytes: usize) -> Self {
        let chunk_bytes = chunk_bytes.clamp(512, 4 << 20);
        ChunkedWriter { stream, buf: Vec::with_capacity(chunk_bytes + 64), chunk_bytes }
    }

    fn emit(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", self.buf.len())?;
        self.stream.write_all(&self.buf)?;
        self.stream.write_all(b"\r\n")?;
        self.buf.clear();
        Ok(())
    }

    fn finish(mut self) -> std::io::Result<()> {
        self.emit()?;
        self.stream.write_all(b"0\r\n\r\n")
    }
}

impl std::io::Write for ChunkedWriter<'_> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        if self.buf.len() >= self.chunk_bytes {
            self.emit()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.emit()?;
        self.stream.flush()
    }
}

/// Evaluate a query against the current snapshot under the server's limits
/// and serialize per `Accept`. The snapshot is pinned for the duration of
/// evaluation: concurrent updates publish new generations without touching
/// this one. Evaluation runs under a [`CancelFlag`] wired to a
/// [`DisconnectWatcher`], so a client that hangs up mid-query (or a server
/// drain) stops the evaluation within one probe interval and releases its
/// admission slot promptly.
fn serve_query(
    wire: &mut Wire<'_>,
    ctx: &Ctx,
    accept: &str,
    query: &str,
    extra: &[String],
) -> std::io::Result<()> {
    let snap = ctx.shared.snapshot();
    let cancel = CancelFlag::new();
    let limits = ctx.config.limits.clone().with_cancel(cancel.clone());
    let watcher = DisconnectWatcher::spawn(wire.stream, cancel, Arc::clone(&ctx.draining));
    let outcome = Engine::builder(&snap).limits(limits).build().run(query);
    drop(watcher);
    match outcome {
        Ok(QueryResults::Solutions(sols)) => {
            if accept.contains("text/csv") {
                stream_solutions(wire, "text/csv", extra, &sols, StreamFormat::Csv)
            } else if accept.contains("text/plain") {
                // the aligned table needs every row for column widths:
                // inherently a buffered format
                write_response_headed(wire, "200 OK", "text/plain", extra, &sols.to_table())
            } else {
                stream_solutions(
                    wire,
                    "application/sparql-results+json",
                    extra,
                    &sols,
                    StreamFormat::Json,
                )
            }
        }
        Ok(QueryResults::Graph(g)) => write_response_headed(
            wire,
            "200 OK",
            "application/n-triples",
            extra,
            &rdfa_model::ntriples::serialize(&g),
        ),
        Ok(QueryResults::Boolean(b)) => write_response_headed(
            wire,
            "200 OK",
            "application/sparql-results+json",
            extra,
            &format!("{{\"head\":{{}},\"boolean\":{b}}}"),
        ),
        Err(e) => write_query_error_headed(wire, &e, extra),
    }
}

/// Serve `/v1/facets`: the left frame (class markers + property facets with
/// counts) for the extension named by `?class=<iri>`, or for the initial
/// state when no class is given.
///
/// Answered from the generation-keyed [`FacetCache`] when the snapshot
/// hasn't changed since the markers were last computed (`X-Facet-Cache:
/// hit`/`miss`). When fresh computation exceeds its deadline — the server
/// default, or a per-request `?budget_ms=` override (`0` = cached only,
/// never compute) — the newest cached marker set for the *same extension*
/// at a superseded generation is served instead, with `X-Facet-Cache:
/// stale` and `X-Facet-Stale: <generation>`; only when no cached set
/// exists either does the request fail `503`.
fn serve_facets(
    wire: &mut Wire<'_>,
    ctx: &Ctx,
    query_string: &str,
) -> std::io::Result<()> {
    let snap = ctx.shared.snapshot();
    let facet_cache = &ctx.facet_cache;
    let ext = match form_value(query_string, "class") {
        Some(iri) => {
            if let Err(e) = notation::validate_iri(&iri) {
                return write_response(
                    wire,
                    "400 Bad Request",
                    "application/json",
                    &json_error(400, &e.message),
                );
            }
            match snap.lookup_iri(&iri) {
                Some(c) => snap.instances_set(c),
                None => {
                    return write_response(
                        wire,
                        "404 Not Found",
                        "application/json",
                        &json_error(404, &format!("unknown class <{iri}>")),
                    );
                }
            }
        }
        None => FacetState::initial(&snap).ext,
    };
    if ext.is_empty() {
        return write_response(
            wire,
            "404 Not Found",
            "application/json",
            &json_error(404, "the class has no instances"),
        );
    }
    let deadline = match form_value(query_string, "budget_ms") {
        Some(ms) => match ms.parse::<u64>() {
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => {
                return write_response(
                    wire,
                    "400 Bad Request",
                    "application/json",
                    &json_error(400, "invalid ?budget_ms= (expected milliseconds)"),
                );
            }
        },
        None => ctx.config.limits.deadline,
    };
    let cached_only = deadline == Some(Duration::ZERO);
    let opts = FacetOptions { threads: 0, deadline };
    let misses_before = facet_cache.stats().misses;
    let mut stale_generation: Option<u64> = None;
    let mut last_err: Option<FacetError> = None;

    let fresh_classes = if cached_only {
        None
    } else {
        match facet_cache.class_markers(&snap, &ext, opts) {
            Ok(c) => Some(c),
            Err(e) => {
                last_err = Some(e);
                None
            }
        }
    };
    let classes = match fresh_classes {
        Some(c) => c,
        None => match facet_cache.class_markers_stale(&ext) {
            Some((c, generation)) => {
                stale_generation =
                    Some(stale_generation.map_or(generation, |g| g.min(generation)));
                c
            }
            None => return write_facet_unavailable(wire, ctx, last_err.as_ref()),
        },
    };
    let fresh_facets = if cached_only {
        None
    } else {
        match facet_cache.property_facets(&snap, &ext, opts) {
            Ok(f) => Some(f),
            Err(e) => {
                last_err = Some(e);
                None
            }
        }
    };
    let facets = match fresh_facets {
        Some(f) => f,
        None => match facet_cache.property_facets_stale(&ext) {
            Some((f, generation)) => {
                stale_generation =
                    Some(stale_generation.map_or(generation, |g| g.min(generation)));
                f
            }
            None => return write_facet_unavailable(wire, ctx, last_err.as_ref()),
        },
    };

    let mut headers = vec![if stale_generation.is_some() {
        "X-Facet-Cache: stale".to_owned()
    } else if facet_cache.stats().misses > misses_before {
        "X-Facet-Cache: miss".to_owned()
    } else {
        "X-Facet-Cache: hit".to_owned()
    }];
    if let Some(generation) = stale_generation {
        headers.push(format!("X-Facet-Stale: {generation}"));
    }
    let payload = format!(
        "{{\"generation\":{},\"extension\":{},\"classes\":[{}],\"facets\":[{}]}}",
        snap.generation(),
        ext.len(),
        classes.iter().map(|m| class_marker_json(&snap, m)).collect::<Vec<_>>().join(","),
        facets.iter().map(|f| facet_json(&snap, f)).collect::<Vec<_>>().join(","),
    );
    write_response_headed(wire, "200 OK", "application/json", &headers, &payload)
}

/// Facet markers could not be computed within budget and no stale set was
/// cached: shed the request rather than blocking the worker.
fn write_facet_unavailable(
    wire: &mut Wire<'_>,
    ctx: &Ctx,
    err: Option<&FacetError>,
) -> std::io::Result<()> {
    let message = match err {
        Some(e) => e.message.clone(),
        None => "no cached facet markers within budget".to_owned(),
    };
    write_response_headed(
        wire,
        "503 Service Unavailable",
        "application/json",
        &[retry_after_header(ctx)],
        &json_error(503, &message),
    )
}

fn term_json(store: &Store, id: rdfa_store::TermId) -> String {
    let term = store.term(id);
    match term.as_iri() {
        Some(iri) => format!("\"{}\"", json_escape(iri)),
        None => format!("\"{}\"", json_escape(&term.display_name())),
    }
}

fn class_marker_json(store: &Store, m: &ClassMarker) -> String {
    format!(
        "{{\"class\":{},\"count\":{},\"children\":[{}]}}",
        term_json(store, m.class),
        m.count,
        m.children.iter().map(|c| class_marker_json(store, c)).collect::<Vec<_>>().join(","),
    )
}

fn facet_json(store: &Store, f: &PropertyFacet) -> String {
    format!(
        "{{\"property\":{},\"values\":[{}],\"children\":[{}]}}",
        term_json(store, f.property),
        f.values
            .iter()
            .map(|(v, n)| format!("{{\"value\":{},\"count\":{n}}}", term_json(store, *v)))
            .collect::<Vec<_>>()
            .join(","),
        f.children.iter().map(|c| facet_json(store, c)).collect::<Vec<_>>().join(","),
    )
}

/// Apply an update as one atomic write transaction: mutate a private
/// working store, then publish the whole batch with a single pointer swap.
/// Readers never see a half-applied update, and a failed update (parse
/// error, resource limit, WAL failure, or panic) publishes nothing — the
/// transaction rolls back on drop.
///
/// On the durable path the WAL append and the publish happen under one
/// journal lock hold: a batch is acknowledged only after it is both logged
/// and visible, and a concurrent checkpoint can never compact away a
/// record for a batch that is not in its store view.
fn serve_update(
    wire: &mut Wire<'_>,
    shared: &SharedStore,
    body: &str,
    extra: &[String],
) -> std::io::Result<()> {
    let mut txn = shared.store.begin_write();
    match &shared.journal {
        None => match execute_update(txn.store_mut(), body) {
            Ok(stats) => {
                txn.commit();
                write_response_headed(
                    wire,
                    "200 OK",
                    "application/json",
                    extra,
                    &format!("{{\"inserted\":{},\"deleted\":{}}}", stats.inserted, stats.deleted),
                )
            }
            Err(e) => write_query_error_headed(wire, &e, extra), // txn rolls back on drop
        },
        Some(journal) => {
            // apply to the working store, recording the concrete triple
            // changes, then log them as ONE atomic WAL record and publish
            // under the same journal lock hold
            match execute_update_recording(txn.store_mut(), body) {
                Ok((stats, changes)) => {
                    match journal.log_mutations_then(&changes, move || txn.commit()) {
                        Ok(()) => write_response_headed(
                            wire,
                            "200 OK",
                            "application/json",
                            extra,
                            &format!(
                                "{{\"inserted\":{},\"deleted\":{}}}",
                                stats.inserted, stats.deleted
                            ),
                        ),
                        // the WAL append failed before publish: the batch
                        // rolled back in memory too, so the store and the
                        // log still agree
                        Err(e) => write_response_headed(
                            wire,
                            "500 Internal Server Error",
                            "application/json",
                            extra,
                            &json_error(500, &format!("durability failure: {e}")),
                        ),
                    }
                }
                Err(e) => write_query_error_headed(wire, &e, extra),
            }
        }
    }
}

/// A query/update error: resource exhaustion is `503` (the request was fine,
/// the server declined to spend more on it); anything else is the client's
/// `400`.
fn write_query_error_headed(
    wire: &mut Wire<'_>,
    e: &rdfa_sparql::SparqlError,
    extra: &[String],
) -> std::io::Result<()> {
    if e.is_resource_limit() {
        write_response_headed(
            wire,
            "503 Service Unavailable",
            "application/json",
            extra,
            &json_error(503, &e.message()),
        )
    } else {
        write_response_headed(
            wire,
            "400 Bad Request",
            "application/json",
            extra,
            &json_error(400, &e.message()),
        )
    }
}

fn write_response(
    wire: &mut Wire<'_>,
    status: &str,
    ctype: &str,
    payload: &str,
) -> std::io::Result<()> {
    write_response_headed(wire, status, ctype, &[], payload)
}

fn write_response_headed(
    wire: &mut Wire<'_>,
    status: &str,
    ctype: &str,
    extra: &[String],
    payload: &str,
) -> std::io::Result<()> {
    // non-200 responses terminate the connection: the request stream may
    // be mid-parse or carry an unread body, so resynchronizing is not
    // worth the risk of serving a desynchronized request
    if !status.starts_with("200") {
        wire.keep_alive = false;
    }
    let conn = if wire.keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: {conn}\r\n",
        payload.len()
    );
    for h in extra {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    wire.stream.write_all(head.as_bytes())?;
    wire.stream.write_all(payload.as_bytes())
}

/// Response writer for paths that have no [`Wire`]: the acceptor's
/// queue-overflow rejection and the panic handler's best-effort `500`.
/// Always closes the connection.
fn write_response_raw(
    stream: &mut TcpStream,
    status: &str,
    ctype: &str,
    extra: &[String],
    payload: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n",
        payload.len()
    );
    for h in extra {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())
}

/// `{"error":{"code":…,"message":"…"}}`
fn json_error(code: u16, message: &str) -> String {
    format!("{{\"error\":{{\"code\":{code},\"message\":\"{}\"}}}}", json_escape(message))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extract and percent-decode one value from a `k=v&k2=v2` query string.
fn form_value(query_string: &str, key: &str) -> Option<String> {
    for pair in query_string.split('&') {
        if let Some((k, v)) = pair.split_once('=') {
            if k == key {
                return Some(percent_decode(v));
            }
        }
    }
    None
}

/// Percent-decoding (plus `+` → space) for URL query components.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h).ok().and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encoding for building request URLs in tests and clients.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn demo_store() -> Store {
        let mut s = Store::new();
        s.load_turtle(
            r#"@prefix ex: <http://example.org/> .
               ex:l1 a ex:Laptop ; ex:price 900 .
               ex:l2 a ex:Laptop ; ex:price 1000 .
            "#,
        )
        .unwrap();
        s
    }

    fn http(addr: std::net::SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        response
    }

    // the helpers read until the server closes the socket, so they opt out
    // of keep-alive explicitly
    fn get(addr: std::net::SocketAddr, path: &str, accept: &str) -> String {
        http(
            addr,
            &format!(
                "GET {path} HTTP/1.1\r\nHost: x\r\nAccept: {accept}\r\nConnection: close\r\n\r\n"
            ),
        )
    }

    fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
        http(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn health_and_404() {
        let server = Server::start(demo_store(), 0).unwrap();
        assert!(get(server.addr(), "/health", "*/*").contains("ok"));
        assert!(get(server.addr(), "/nope", "*/*").starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn get_query_returns_json() {
        let server = Server::start(demo_store(), 0).unwrap();
        let q = percent_encode(
            "PREFIX ex: <http://example.org/> SELECT (COUNT(?x) AS ?n) WHERE { ?x a ex:Laptop . }",
        );
        let resp = get(server.addr(), &format!("/sparql?query={q}"), "*/*");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("sparql-results+json"));
        assert!(resp.contains("\"value\":\"2\""), "{resp}");
    }

    #[test]
    fn post_query_with_csv_accept() {
        let server = Server::start(demo_store(), 0).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let body = "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Laptop . } ORDER BY ?x";
        stream
            .write_all(
                format!(
                    "POST /sparql HTTP/1.1\r\nHost: x\r\nAccept: text/csv\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.contains("text/csv"));
        assert!(resp.contains("http://example.org/l1"));
    }

    #[test]
    fn update_mutates_store() {
        let server = Server::start(demo_store(), 0).unwrap();
        let resp = post(
            server.addr(),
            "/update",
            "PREFIX ex: <http://example.org/> INSERT DATA { ex:l3 a ex:Laptop . }",
        );
        assert!(resp.contains("\"inserted\":1"), "{resp}");
        let q = percent_encode(
            "PREFIX ex: <http://example.org/> SELECT (COUNT(?x) AS ?n) WHERE { ?x a ex:Laptop . }",
        );
        let resp = get(server.addr(), &format!("/sparql?query={q}"), "*/*");
        assert!(resp.contains("\"value\":\"3\""), "{resp}");
    }

    #[test]
    fn v1_query_serves_json_csv_and_plain() {
        let server = Server::start(demo_store(), 0).unwrap();
        let q = percent_encode(
            "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Laptop . } ORDER BY ?x",
        );
        let json = get(server.addr(), &format!("/v1/query?query={q}"), "*/*");
        assert!(json.starts_with("HTTP/1.1 200"), "{json}");
        assert!(json.contains("sparql-results+json"), "{json}");
        let csv = get(server.addr(), &format!("/v1/query?query={q}"), "text/csv");
        assert!(csv.contains("text/csv"), "{csv}");
        assert!(csv.contains("http://example.org/l1"), "{csv}");
        let table = get(server.addr(), &format!("/v1/query?query={q}"), "text/plain");
        assert!(table.contains("text/plain"), "{table}");
        // POST body is the query verbatim, same as the legacy route
        let body = "SELECT ?x WHERE { ?x ?p ?o . }";
        let resp = http(
            server.addr(),
            &format!(
                "POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    }

    #[test]
    fn v1_update_mutates_store() {
        let server = Server::start(demo_store(), 0).unwrap();
        let resp = post(
            server.addr(),
            "/v1/update",
            "PREFIX ex: <http://example.org/> INSERT DATA { ex:l9 a ex:Laptop . }",
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"inserted\":1"), "{resp}");
        assert!(!resp.contains("Deprecation"), "{resp}");
    }

    #[test]
    fn legacy_routes_carry_deprecation_header_v1_does_not() {
        let server = Server::start(demo_store(), 0).unwrap();
        let q = percent_encode("SELECT ?x WHERE { ?x ?p ?o . }");
        let legacy = get(server.addr(), &format!("/sparql?query={q}"), "*/*");
        assert!(legacy.contains("Deprecation: true"), "{legacy}");
        assert!(
            legacy.contains("Link: </v1/query>; rel=\"successor-version\""),
            "{legacy}"
        );
        let v1 = get(server.addr(), &format!("/v1/query?query={q}"), "*/*");
        assert!(!v1.contains("Deprecation"), "{v1}");
        let upd = post(server.addr(), "/update", "INSERT DATA { <urn:a> <urn:b> <urn:c> . }");
        assert!(upd.contains("Deprecation: true"), "{upd}");
        assert!(
            upd.contains("Link: </v1/update>; rel=\"successor-version\""),
            "{upd}"
        );
        // errors on legacy routes are marked too
        let err = get(server.addr(), "/sparql?query=NOT+SPARQL", "*/*");
        assert!(err.starts_with("HTTP/1.1 400"), "{err}");
        assert!(err.contains("Deprecation: true"), "{err}");
    }

    #[test]
    fn v1_query_without_query_param_is_400() {
        let server = Server::start(demo_store(), 0).unwrap();
        let resp = get(server.addr(), "/v1/query", "*/*");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("missing ?query="), "{resp}");
    }

    #[test]
    fn bad_query_is_400_with_json_error_body() {
        let server = Server::start(demo_store(), 0).unwrap();
        let resp = get(server.addr(), "/sparql?query=NOT+SPARQL", "*/*");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("\"error\""), "{resp}");
        assert!(resp.contains("\"code\":400"), "{resp}");
    }

    #[test]
    fn void_route_describes_dataset() {
        let server = Server::start(demo_store(), 0).unwrap();
        let resp = get(server.addr(), "/void", "*/*");
        assert!(resp.contains("void#triples"), "{resp}");
    }

    #[test]
    fn ask_returns_boolean_json() {
        let server = Server::start(demo_store(), 0).unwrap();
        let q = percent_encode("PREFIX ex: <http://example.org/> ASK WHERE { ?x ex:price 900 . }");
        let resp = get(server.addr(), &format!("/sparql?query={q}"), "*/*");
        assert!(resp.contains("\"boolean\":true"), "{resp}");
    }

    #[test]
    fn percent_roundtrip() {
        let s = "SELECT * WHERE { ?s ?p \"a b+c%\" . }";
        assert_eq!(percent_decode(&percent_encode(s)), s);
    }

    #[test]
    fn oversized_content_length_is_rejected_with_413() {
        // regression: the server used to allocate `vec![0u8; content_length]`
        // straight from the header — a one-line request could reserve a gig
        let server = Server::start(demo_store(), 0).unwrap();
        let resp = http(
            server.addr(),
            "POST /sparql HTTP/1.1\r\nHost: x\r\nContent-Length: 999999999\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        assert!(resp.contains("\"code\":413"), "{resp}");
    }

    #[test]
    fn malformed_request_line_is_400() {
        let server = Server::start(demo_store(), 0).unwrap();
        let resp = http(server.addr(), "GARBAGE\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        let resp = http(server.addr(), "GET /health NOT-HTTP\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    }

    #[test]
    fn invalid_content_length_is_400() {
        let server = Server::start(demo_store(), 0).unwrap();
        let resp = http(
            server.addr(),
            "POST /sparql HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    }

    #[test]
    fn slow_loris_times_out_without_blocking_others() {
        let config = ServerConfig {
            read_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        };
        let server = Server::start_with(demo_store(), 0, config).unwrap();
        let addr = server.addr();
        // a client that sends one byte of the request line and then stalls
        let mut loris = TcpStream::connect(addr).unwrap();
        loris.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        loris.write_all(b"G").unwrap();
        // other clients are served promptly while the loris occupies a worker
        let t0 = Instant::now();
        assert!(get(addr, "/health", "*/*").contains("ok"));
        assert!(t0.elapsed() < Duration::from_millis(250), "{:?}", t0.elapsed());
        // the stalled connection itself is answered 408 once its timeout fires
        let mut resp = String::new();
        let _ = loris.read_to_string(&mut resp);
        assert!(resp.starts_with("HTTP/1.1 408"), "{resp}");
    }

    #[test]
    fn panicking_handler_returns_500_and_server_survives() {
        let config = ServerConfig { debug_routes: true, ..ServerConfig::default() };
        let server = Server::start_with(demo_store(), 0, config).unwrap();
        let resp = get(server.addr(), "/panic", "*/*");
        assert!(resp.starts_with("HTTP/1.1 500"), "{resp}");
        assert!(resp.contains("\"code\":500"), "{resp}");
        // the worker survives the panic and keeps serving
        assert!(get(server.addr(), "/health", "*/*").contains("ok"));
        // without debug_routes the route does not exist
        let plain = Server::start(demo_store(), 0).unwrap();
        assert!(get(plain.addr(), "/panic", "*/*").starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn resource_limited_query_returns_503_json() {
        let mut s = Store::new();
        let mut ttl = String::from("@prefix ex: <http://example.org/> .\n");
        for i in 0..400 {
            ttl.push_str(&format!("ex:n{i} ex:partOf ex:n{} .\n", (i + 1) % 400));
        }
        s.load_turtle(&ttl).unwrap();
        let config = ServerConfig {
            limits: EvalLimits::default().with_max_path_visits(100),
            ..ServerConfig::default()
        };
        let server = Server::start_with(s, 0, config).unwrap();
        let q = percent_encode(
            "PREFIX ex: <http://example.org/> SELECT ?x ?y WHERE { ?x ex:partOf+ ?y . }",
        );
        let resp = get(server.addr(), &format!("/sparql?query={q}"), "*/*");
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        assert!(resp.contains("\"error\""), "{resp}");
        assert!(resp.contains("resource limit"), "{resp}");
    }

    #[test]
    fn queue_overflow_returns_503_with_retry_after() {
        let config = ServerConfig {
            workers: 1,
            queue_capacity: 1,
            read_timeout: Duration::from_millis(400),
            ..ServerConfig::default()
        };
        let server = Server::start_with(demo_store(), 0, config).unwrap();
        let addr = server.addr();
        // occupy the single worker with a stalled connection
        let mut busy = TcpStream::connect(addr).unwrap();
        busy.write_all(b"G").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // fill the one queue slot
        let _queued = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // the next connection overflows the queue and is turned away
        let mut overflow = TcpStream::connect(addr).unwrap();
        overflow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut resp = String::new();
        let _ = overflow.read_to_string(&mut resp);
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        assert!(resp.contains("queue full"), "{resp}");
        assert!(retry_after_secs(&resp).is_some(), "{resp}");
    }

    /// Parse the `Retry-After` value out of a raw response, if present.
    fn retry_after_secs(resp: &str) -> Option<u64> {
        resp.lines()
            .find_map(|l| l.strip_prefix("Retry-After: "))
            .and_then(|v| v.trim().parse().ok())
    }

    #[test]
    fn admission_budget_sheds_with_retry_after_then_recovers() {
        let config = ServerConfig {
            max_in_flight: 1,
            debug_routes: true,
            ..ServerConfig::default()
        };
        let server = Server::start_with(demo_store(), 0, config).unwrap();
        let addr = server.addr();
        // saturate the one-slot budget with a request that holds it
        let slow = std::thread::spawn(move || get(addr, "/slow?ms=1200", "*/*"));
        std::thread::sleep(Duration::from_millis(300));
        // work routes are shed immediately instead of queueing
        let q = percent_encode("SELECT ?x WHERE { ?x ?p ?o . }");
        let shed = get(addr, &format!("/v1/query?query={q}"), "*/*");
        assert!(shed.starts_with("HTTP/1.1 503"), "{shed}");
        let secs = retry_after_secs(&shed).expect("shed response carries Retry-After");
        assert!((1..=3).contains(&secs), "jittered Retry-After out of range: {secs}");
        assert!(shed.contains("budget exhausted"), "{shed}");
        // health and healthz bypass the budget: the saturated server is
        // still probeable, and reports the held slot and the shed request
        assert!(get(addr, "/health", "*/*").contains("ok"));
        let hz = get(addr, "/healthz", "*/*");
        assert!(hz.contains("\"in_flight\":1"), "{hz}");
        assert!(hz.contains("\"shed\":1"), "{hz}");
        // once the slot frees, the same query succeeds
        assert!(slow.join().unwrap().starts_with("HTTP/1.1 200"));
        let ok = get(addr, &format!("/v1/query?query={q}"), "*/*");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        assert_eq!(server.shed_requests(), 1);
        assert_eq!(server.in_flight(), 0);
    }

    #[test]
    fn healthz_reports_plain_store() {
        let server = Server::start(demo_store(), 0).unwrap();
        let resp = get(server.addr(), "/healthz", "*/*");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"durable\":false"), "{resp}");
        assert!(resp.contains("\"triples\":4"), "{resp}");
        // the admission and snapshot gauges are always present
        assert!(resp.contains("\"snapshot_generation\":"), "{resp}");
        assert!(resp.contains("\"in_flight\":0"), "{resp}");
        assert!(resp.contains("\"shed\":0"), "{resp}");
    }

    #[test]
    fn durable_server_persists_updates_across_restart() {
        use rdfa_store::PersistConfig;
        let dir = std::env::temp_dir()
            .join(format!("rdfa-server-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut pstore = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
            pstore
                .load_turtle(
                    r#"@prefix ex: <http://example.org/> . ex:l1 a ex:Laptop ."#,
                )
                .unwrap();
            let server =
                Server::start_durable(pstore, 0, ServerConfig::default()).unwrap();
            let resp = post(
                server.addr(),
                "/update",
                "PREFIX ex: <http://example.org/> INSERT DATA { ex:l2 a ex:Laptop . }",
            );
            assert!(resp.contains("\"inserted\":1"), "{resp}");
            // healthz sees the durable store: gen 0, 2 WAL records (the
            // initial load + the update batch)
            let hz = get(server.addr(), "/healthz", "*/*");
            assert!(hz.contains("\"durable\":true"), "{hz}");
            assert!(hz.contains("\"generation\":0"), "{hz}");
            assert!(hz.contains("\"wal_records\":2"), "{hz}");
            server.stop(); // drains in-flight work, then checkpoints
        }
        // a new process generation reopens the directory and sees both
        // laptops — from the shutdown checkpoint, with an empty WAL
        let pstore = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
        assert_eq!(pstore.recovery().generation, 1);
        assert_eq!(pstore.recovery().snapshot_triples, 2);
        assert_eq!(pstore.recovery().wal_records_replayed, 0);
        let server = Server::start_durable(pstore, 0, ServerConfig::default()).unwrap();
        let q = percent_encode(
            "PREFIX ex: <http://example.org/> SELECT (COUNT(?x) AS ?n) WHERE { ?x a ex:Laptop . }",
        );
        let resp = get(server.addr(), &format!("/sparql?query={q}"), "*/*");
        assert!(resp.contains("\"value\":\"2\""), "{resp}");
        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn facets_route_serves_markers_and_caches_repeats() {
        let server = Server::start(demo_store(), 0).unwrap();
        let class = percent_encode("http://example.org/Laptop");
        let first = get(server.addr(), &format!("/v1/facets?class={class}"), "*/*");
        assert!(first.starts_with("HTTP/1.1 200"), "{first}");
        assert!(first.contains("X-Facet-Cache: miss"), "{first}");
        assert!(first.contains("\"extension\":2"), "{first}");
        assert!(first.contains("\"property\":\"http://example.org/price\""), "{first}");
        assert!(first.contains("\"count\":1"), "{first}");
        // the same state again is a cache hit
        let second = get(server.addr(), &format!("/v1/facets?class={class}"), "*/*");
        assert!(second.contains("X-Facet-Cache: hit"), "{second}");
        let stats = get(server.addr(), "/v1/facets/stats", "*/*");
        assert!(stats.contains("\"hits\":2"), "{stats}"); // classes + facets
        assert!(stats.contains("\"misses\":2"), "{stats}");
        // an update bumps the store generation: the state must recompute
        let resp = post(
            server.addr(),
            "/v1/update",
            "PREFIX ex: <http://example.org/> INSERT DATA { ex:l3 a ex:Laptop ; ex:price 1100 . }",
        );
        assert!(resp.contains("\"inserted\":2"), "{resp}");
        let third = get(server.addr(), &format!("/v1/facets?class={class}"), "*/*");
        assert!(third.contains("X-Facet-Cache: miss"), "{third}");
        assert!(third.contains("\"extension\":3"), "{third}");
    }

    #[test]
    fn facets_route_without_class_uses_initial_state() {
        let server = Server::start(demo_store(), 0).unwrap();
        let resp = get(server.addr(), "/v1/facets", "*/*");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"classes\":["), "{resp}");
        assert!(resp.contains("http://example.org/Laptop"), "{resp}");
    }

    #[test]
    fn facets_route_rejects_bad_and_unknown_classes() {
        let server = Server::start(demo_store(), 0).unwrap();
        // embedded '>' = SPARQL-injection shape: rejected before lookup
        let attack = percent_encode("http://e/x> ?y . } UNION { ?a ?b ?c");
        let resp = get(server.addr(), &format!("/v1/facets?class={attack}"), "*/*");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        let unknown = percent_encode("http://example.org/NoSuchClass");
        let resp = get(server.addr(), &format!("/v1/facets?class={unknown}"), "*/*");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
    }

    #[test]
    fn facets_budget_zero_serves_stale_generation() {
        let server = Server::start(demo_store(), 0).unwrap();
        let class = percent_encode("http://example.org/Laptop");
        // cached-only before anything is cached: degradation has nothing
        // to fall back to, so the request is shed
        let nothing =
            get(server.addr(), &format!("/v1/facets?class={class}&budget_ms=0"), "*/*");
        assert!(nothing.starts_with("HTTP/1.1 503"), "{nothing}");
        assert!(retry_after_secs(&nothing).is_some(), "{nothing}");
        // warm the cache at the current generation
        let fresh = get(server.addr(), &format!("/v1/facets?class={class}"), "*/*");
        assert!(fresh.contains("X-Facet-Cache: miss"), "{fresh}");
        assert!(!fresh.contains("X-Facet-Stale"), "{fresh}");
        // an update elsewhere in the graph bumps the generation without
        // changing the Laptop extension
        let resp = post(
            server.addr(),
            "/v1/update",
            "PREFIX ex: <http://example.org/> INSERT DATA { ex:l1 ex:weight 2 . }",
        );
        assert!(resp.contains("\"inserted\":1"), "{resp}");
        // cached-only now serves the superseded generation's markers,
        // flagged stale, instead of computing or failing
        let stale =
            get(server.addr(), &format!("/v1/facets?class={class}&budget_ms=0"), "*/*");
        assert!(stale.starts_with("HTTP/1.1 200"), "{stale}");
        assert!(stale.contains("X-Facet-Cache: stale"), "{stale}");
        assert!(stale.contains("X-Facet-Stale: "), "{stale}");
        assert!(stale.contains("\"property\":\"http://example.org/price\""), "{stale}");
        let stats = get(server.addr(), "/v1/facets/stats", "*/*");
        assert!(stats.contains("\"stale_hits\":2"), "{stats}"); // classes + facets
        // garbage budget is the client's error
        let bad = get(server.addr(), &format!("/v1/facets?class={class}&budget_ms=soon"), "*/*");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
    }

    #[test]
    fn concurrent_clients_under_write_contention() {
        let server = Server::start(demo_store(), 0).unwrap();
        let addr = server.addr();
        let mut handles = Vec::new();
        for i in 0..8 {
            handles.push(std::thread::spawn(move || {
                if i % 2 == 0 {
                    let body = format!(
                        "PREFIX ex: <http://example.org/> INSERT DATA {{ ex:c{i} a ex:Laptop . }}"
                    );
                    let resp = post(addr, "/update", &body);
                    assert!(resp.contains("\"inserted\":1"), "{resp}");
                } else {
                    let q = percent_encode(
                        "PREFIX ex: <http://example.org/> SELECT (COUNT(?x) AS ?n) WHERE { ?x a ex:Laptop . }",
                    );
                    let resp = get(addr, &format!("/sparql?query={q}"), "*/*");
                    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 2 seed laptops + 4 inserted by the even-numbered clients
        let q = percent_encode(
            "PREFIX ex: <http://example.org/> SELECT (COUNT(?x) AS ?n) WHERE { ?x a ex:Laptop . }",
        );
        let resp = get(addr, &format!("/sparql?query={q}"), "*/*");
        assert!(resp.contains("\"value\":\"6\""), "{resp}");
    }

    /// Read exactly one HTTP response (headers + body) from a keep-alive
    /// stream, decoding Content-Length or chunked framing.
    fn read_one_response(stream: &mut TcpStream) -> (String, String) {
        let mut reader = BufReader::new(stream);
        let mut head = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line.is_empty() {
                break;
            }
            head.push_str(&line);
        }
        let body = if head.to_ascii_lowercase().contains("transfer-encoding: chunked") {
            let mut body = Vec::new();
            loop {
                let mut size_line = String::new();
                reader.read_line(&mut size_line).unwrap();
                let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
                if size == 0 {
                    let mut crlf = String::new();
                    reader.read_line(&mut crlf).unwrap();
                    break;
                }
                let mut chunk = vec![0u8; size + 2]; // data + CRLF
                reader.read_exact(&mut chunk).unwrap();
                chunk.truncate(size);
                body.extend_from_slice(&chunk);
            }
            String::from_utf8(body).unwrap()
        } else {
            let len: usize = head
                .lines()
                .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length: ").map(str::to_owned))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0);
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
            String::from_utf8(body).unwrap()
        };
        (head, body)
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = Server::start(demo_store(), 0).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let q = percent_encode("SELECT ?x WHERE { ?x ?p ?o . }");
        for i in 0..3 {
            stream
                .write_all(
                    format!("GET /v1/query?query={q} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes(),
                )
                .unwrap();
            let (head, body) = read_one_response(&mut stream);
            assert!(head.starts_with("HTTP/1.1 200"), "request {i}: {head}");
            assert!(head.contains("Connection: keep-alive"), "request {i}: {head}");
            assert!(body.contains("\"bindings\""), "request {i}: {body}");
        }
        // an explicit close is honoured
        stream
            .write_all(b"GET /health HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (head, body) = read_one_response(&mut stream);
        assert!(head.contains("Connection: close"), "{head}");
        assert_eq!(body, "ok");
        let mut rest = String::new();
        stream.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty(), "server kept the connection open after close: {rest}");
    }

    #[test]
    fn max_requests_per_conn_closes_after_cap() {
        let config =
            ServerConfig { max_requests_per_conn: 2, ..ServerConfig::default() };
        let server = Server::start_with(demo_store(), 0, config).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let (head, _) = read_one_response(&mut stream);
        assert!(head.contains("Connection: keep-alive"), "{head}");
        // the capped request announces the close
        stream.write_all(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let (head, _) = read_one_response(&mut stream);
        assert!(head.contains("Connection: close"), "{head}");
        let mut rest = String::new();
        stream.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection survived the request cap: {rest}");
    }

    #[test]
    fn idle_keep_alive_connection_is_closed_silently() {
        let config = ServerConfig {
            keep_alive_timeout: Duration::from_millis(150),
            ..ServerConfig::default()
        };
        let server = Server::start_with(demo_store(), 0, config).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let (head, _) = read_one_response(&mut stream);
        assert!(head.contains("Connection: keep-alive"), "{head}");
        // idle past the keep-alive budget: the server closes without a 408
        let mut rest = String::new();
        stream.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty(), "expected silent close, got: {rest}");
    }

    #[test]
    fn select_solutions_stream_chunked_with_crlf_csv() {
        let server = Server::start(demo_store(), 0).unwrap();
        let q = percent_encode(
            "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Laptop . } ORDER BY ?x",
        );
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream
            .write_all(
                format!(
                    "GET /v1/query?query={q} HTTP/1.1\r\nHost: x\r\nAccept: text/csv\r\n\r\n"
                )
                .as_bytes(),
            )
            .unwrap();
        let (head, body) = read_one_response(&mut stream);
        assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
        assert!(!head.to_ascii_lowercase().contains("content-length"), "{head}");
        assert_eq!(body, "x\r\nhttp://example.org/l1\r\nhttp://example.org/l2\r\n");
        // HTTP/1.0 clients can't parse chunked: they get a buffered body
        let resp = http(
            server.addr(),
            &format!("GET /v1/query?query={q} HTTP/1.0\r\nHost: x\r\nAccept: text/csv\r\n\r\n"),
        );
        assert!(resp.contains("Content-Length"), "{resp}");
        assert!(!resp.contains("Transfer-Encoding"), "{resp}");
    }

    #[test]
    fn retry_after_jitter_spreads_across_sheds() {
        let config = ServerConfig {
            max_in_flight: 1,
            debug_routes: true,
            ..ServerConfig::default()
        };
        let server = Server::start_with(demo_store(), 0, config).unwrap();
        let addr = server.addr();
        let slow = std::thread::spawn(move || get(addr, "/slow?ms=1500", "*/*"));
        std::thread::sleep(Duration::from_millis(300));
        let q = percent_encode("SELECT ?x WHERE { ?x ?p ?o . }");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            let shed = get(addr, &format!("/v1/query?query={q}"), "*/*");
            assert!(shed.starts_with("HTTP/1.1 503"), "{shed}");
            let secs = retry_after_secs(&shed).expect("Retry-After present");
            assert!((1..=3).contains(&secs), "out of range: {secs}");
            seen.insert(secs);
        }
        assert!(seen.len() > 1, "32 sheds all got the same Retry-After: {seen:?}");
        slow.join().unwrap();
    }
}
