//! `rdfa` — an interactive terminal front-end for RDF-Analytics, the
//! command-line counterpart of the paper's system demonstration (§6.2).
//!
//! ```text
//! $ cargo run --bin rdfa                       # starts on the demo KG
//! $ cargo run --bin rdfa -- --open ./kg.db     # durable store (WAL + snapshots)
//! rdfa> facets
//! rdfa> class Laptop
//! rdfa> group manufacturer
//! rdfa> measure price
//! rdfa> ops avg max
//! rdfa> run
//! rdfa> checkpoint
//! rdfa> help
//! ```
//!
//! Property and resource names may be given as plain local names; they are
//! resolved against the loaded KG. With `--open DIR` the store recovers
//! from `DIR` on start; a file argument seeds it only when it is empty, and
//! `checkpoint` compacts the WAL into a fresh snapshot.

use rdf_analytics::analytics::{AnalyticsSession, GroupSpec, MeasureSpec};
use rdf_analytics::facets::{markers, PathStep};
use rdf_analytics::hifun::{AggOp, CondOp, DerivedFn};
use rdf_analytics::model::{Term, Value};
use rdf_analytics::sparql::Engine;
use rdf_analytics::store::{
    LoadOptions, PersistConfig, PersistentStore, Store, StoreStats, TermId,
};
use rdf_analytics::viz::{BarChart, BarDatum};
use std::io::{BufRead, Write};

/// The REPL's store: in-memory, or bound to a durable directory.
enum Backing {
    Plain(Store),
    Durable(PersistentStore),
}

impl Backing {
    fn store(&self) -> &Store {
        match self {
            Backing::Plain(s) => s,
            Backing::Durable(p) => p,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut open_dir: Option<String> = None;
    let mut load_opts = LoadOptions::default();
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" {
            i += 1;
            match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => load_opts.threads = n,
                None => {
                    eprintln!("--threads needs a numeric argument (0 = auto)");
                    std::process::exit(2);
                }
            }
        } else if args[i] == "--open" {
            i += 1;
            match args.get(i) {
                Some(dir) => open_dir = Some(dir.clone()),
                None => {
                    eprintln!("--open needs a directory argument");
                    std::process::exit(2);
                }
            }
        } else {
            positional.push(args[i].clone());
        }
        i += 1;
    }

    let backing = match open_dir {
        Some(dir) => {
            let mut pstore = PersistentStore::open(&dir, PersistConfig::from_env())
                .unwrap_or_else(|e| {
                    eprintln!("cannot open {dir}: {e}");
                    std::process::exit(2);
                });
            let r = pstore.recovery();
            eprintln!(
                "recovered {dir}: generation {}, {} snapshot triples + {} WAL records",
                r.generation, r.snapshot_triples, r.wal_records_replayed
            );
            // seed only an empty store; a populated one keeps its state
            if pstore.is_empty() {
                if let Err(e) = seed_durable(&mut pstore, positional.first(), load_opts) {
                    eprintln!("cannot load: {e}");
                    std::process::exit(2);
                }
            } else if let Some(path) = positional.first() {
                eprintln!("ignoring {path}: store already holds {} triples", pstore.len());
            }
            Backing::Durable(pstore)
        }
        None => {
            let mut store = Store::new();
            match positional.first().map(String::as_str) {
                Some("invoices") => {
                    rdf_analytics::datagen::InvoicesGenerator::new(300, 7)
                        .generate_into(&mut store, load_opts);
                }
                Some(path) if std::path::Path::new(path).exists() => {
                    // streamed + parallel bulk ingest; malformed input is a
                    // diagnosed exit, not a panic
                    let loaded = if path.ends_with(".nt") {
                        store.load_ntriples_path(path, load_opts)
                    } else {
                        store.load_turtle_path(path, load_opts)
                    };
                    match loaded {
                        Ok(stats) => eprintln!("loaded {} triples from {path}", stats.triples),
                        Err(e) => {
                            eprintln!("cannot load {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                _ => {
                    rdf_analytics::datagen::ProductsGenerator::new(200, 7)
                        .generate_into(&mut store, load_opts);
                }
            }
            Backing::Plain(store)
        }
    };
    let store = backing.store();
    eprintln!(
        "KG ready: {} triples ({} entailed). Type 'help' for commands.",
        store.len(),
        store.len_entailed()
    );

    let mut session = AnalyticsSession::start(store);
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("rdfa> ");
        let _ = out.flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match dispatch(line, &backing, &mut session) {
            Ok(Continue::Yes) => {}
            Ok(Continue::No) => break,
            Err(msg) => eprintln!("error: {msg}"),
        }
    }
}

/// Seed an empty durable store from a file (or the demo KG), logging the
/// load through the WAL so it survives a crash before the first checkpoint.
fn seed_durable(
    pstore: &mut PersistentStore,
    path: Option<&String>,
    opts: LoadOptions,
) -> Result<(), String> {
    match path.map(String::as_str) {
        Some("invoices") => {
            let g = rdf_analytics::datagen::InvoicesGenerator::new(300, 7).generate();
            pstore.load_graph(&g).map_err(|e| e.to_string())?;
        }
        Some(path) if std::path::Path::new(path).exists() => {
            let n = if path.ends_with(".nt") {
                pstore
                    .load_ntriples_path(path, opts)
                    .map_err(|e| format!("{path}: {e}"))?
                    .triples
            } else {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                pstore.load_turtle(&text).map_err(|e| e.to_string())?
            };
            eprintln!("loaded {n} triples from {path}");
        }
        _ => {
            let g = rdf_analytics::datagen::ProductsGenerator::new(200, 7).generate();
            pstore.load_graph(&g).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

enum Continue {
    Yes,
    No,
}

fn dispatch(
    line: &str,
    backing: &Backing,
    session: &mut AnalyticsSession<'_>,
) -> Result<Continue, String> {
    let store = backing.store();
    let mut words = line.split_whitespace();
    let verb = words.next().unwrap_or("");
    let rest: Vec<&str> = words.collect();
    match verb {
        "help" => {
            println!("{HELP}");
        }
        "quit" | "exit" => return Ok(Continue::No),
        "checkpoint" => match backing {
            Backing::Durable(p) => {
                let generation = p.checkpoint().map_err(|e| e.to_string())?;
                println!(
                    "checkpointed to generation {generation} in {} ({} triples, WAL reset)",
                    p.dir().display(),
                    p.len()
                );
            }
            Backing::Plain(_) => {
                return Err("store is in-memory only — start with --open DIR".into())
            }
        },
        "export" => match backing {
            Backing::Durable(p) => {
                let path = rest.first().ok_or("usage: export <file.nt>")?;
                p.export_ntriples(path).map_err(|e| e.to_string())?;
                println!("exported {} triples to {path}", p.len());
            }
            Backing::Plain(_) => {
                return Err("store is in-memory only — start with --open DIR".into())
            }
        },
        "stats" => {
            let stats = StoreStats::gather(store);
            print!("{}", stats.report(store));
        }
        "facets" => {
            println!("— classes —");
            print!(
                "{}",
                markers::render_class_markers(store, &session.facets().class_markers(), 0)
            );
            println!("— facets (focus: {} resources) —", session.facets().extension().len());
            print!(
                "{}",
                markers::render_property_facets(store, &session.facets().facets(), 0)
            );
        }
        "buckets" => {
            // buckets <prop> [n]
            let path = parse_path(store, rest.first().copied())?;
            let n: usize = rest.get(1).and_then(|w| w.parse().ok()).unwrap_or(5);
            let buckets = rdf_analytics::facets::bucket_values(
                store,
                session.facets().extension(),
                &path,
                n,
            );
            if buckets.is_empty() {
                println!("(fewer than two distinct numeric values — flat list is better)");
            }
            for b in &buckets {
                println!("  {} ({})", b.label(), b.count);
            }
        }
        "grouped" => {
            let p = resolve(store, rest.first().copied())?;
            let gv = rdf_analytics::facets::grouped_values(
                store,
                session.facets().extension(),
                p,
            );
            print!(
                "{}",
                rdf_analytics::facets::markers::render_grouped_values(store, p, &gv)
            );
        }
        "expand" => {
            let path = parse_path(store, rest.first().copied())?;
            for (v, n) in session.facets().expand(&path) {
                println!("  {} ({n})", store.term(v).display_name());
            }
        }
        "class" => {
            let c = resolve(store, rest.first().copied())?;
            session.select_class(c).map_err(|e| e.message)?;
            show_focus(store, session);
        }
        "value" => {
            let p = resolve(store, rest.first().copied())?;
            let v = resolve_term(store, rest.get(1).copied())?;
            session.select_value(p, v).map_err(|e| e.message)?;
            show_focus(store, session);
        }
        "path" => {
            // path p1/p2 = v
            let path = parse_path(store, rest.first().copied())?;
            if rest.get(1) != Some(&"=") {
                return Err("usage: path p1/p2 = value".into());
            }
            let v = resolve_term(store, rest.get(2).copied())?;
            session.select_path_value(&path, v).map_err(|e| e.message)?;
            show_focus(store, session);
        }
        "range" => {
            let path = parse_path(store, rest.first().copied())?;
            let min = parse_bound(rest.get(1).copied())?;
            let max = parse_bound(rest.get(2).copied())?;
            session.select_range(&path, min, max).map_err(|e| e.message)?;
            show_focus(store, session);
        }
        "group" => {
            let props = parse_props(store, rest.first().copied())?;
            let mut spec = GroupSpec::path(props);
            spec = match rest.get(1).copied() {
                Some("[year]") => spec.with_derived(DerivedFn::Year),
                Some("[month]") => spec.with_derived(DerivedFn::Month),
                Some("[day]") => spec.with_derived(DerivedFn::Day),
                _ => spec,
            };
            session.add_grouping(spec);
            println!("grouping attributes: {}", session.groupings().len());
        }
        "measure" => {
            let props = parse_props(store, rest.first().copied())?;
            session.set_measure(MeasureSpec::path(props));
        }
        "ops" => {
            let mut ops = Vec::new();
            for w in &rest {
                ops.push(match *w {
                    "count" => AggOp::Count,
                    "sum" => AggOp::Sum,
                    "avg" => AggOp::Avg,
                    "min" => AggOp::Min,
                    "max" => AggOp::Max,
                    other => return Err(format!("unknown op {other}")),
                });
            }
            session.set_ops(ops);
        }
        "having" => {
            let idx: usize = rest
                .first()
                .and_then(|w| w.parse().ok())
                .ok_or("usage: having <op-index> <cmp> <number>")?;
            let cond = match rest.get(1).copied() {
                Some("=") => CondOp::Eq,
                Some("<") => CondOp::Lt,
                Some("<=") => CondOp::Le,
                Some(">") => CondOp::Gt,
                Some(">=") => CondOp::Ge,
                Some("!=") => CondOp::Ne,
                _ => return Err("usage: having <op-index> <cmp> <number>".into()),
            };
            let v: f64 = rest
                .get(2)
                .and_then(|w| w.parse().ok())
                .ok_or("having needs a numeric threshold")?;
            session.add_having(idx, cond, Term::decimal(v));
        }
        "run" => {
            let frame = session.run().map_err(|e| e.message)?;
            println!("{}", frame.hifun);
            print!("{}", frame.to_table());
            if frame.headers.len() >= 2 && frame.rows.len() > 1 {
                if let Ok(chart) = chart_of(&frame) {
                    println!("{}", chart.to_text(36));
                }
            }
        }
        "sparql" => println!("{}", session.sparql().map_err(|e| e.message)?),
        "intent" => println!("{}", session.facets().intent_sparql()),
        "back" => {
            session.facets_mut().back();
            show_focus(store, session);
        }
        "reset" => {
            session.facets_mut().reset();
            session.clear_analytics();
            show_focus(store, session);
        }
        "explain" => {
            let text = session.sparql().map_err(|e| e.message)?;
            let plan = rdf_analytics::sparql::explain(
                store,
                &text,
                rdf_analytics::sparql::eval::EvalOptions::default(),
            )
            .map_err(|e| e.message())?;
            print!("{}", plan.to_text());
        }
        "hifun" => {
            // evaluate a HIFUN query written in the paper's notation,
            // resolved against the KG's dominant namespace
            let text = line.trim_start_matches("hifun").trim();
            let ns = dominant_namespace(store);
            let q = rdf_analytics::hifun::parse_hifun(text, &ns).map_err(|e| e.message)?;
            println!("{} — translating to SPARQL:", q);
            let sparql = rdf_analytics::hifun::to_sparql(&q);
            println!("{sparql}");
            let sols = Engine::builder(store)
                .build()
                .run(&sparql)
                .map_err(|e| e.message())?
                .into_solutions()
                .ok_or("not a SELECT")?;
            print!("{}", sols.to_table());
        }
        "script" => {
            // script <file> — run a click script against a fresh session
            let path = rest.first().ok_or("usage: script <file>")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let script =
                rdf_analytics::analytics::Script::parse(&text).map_err(|e| e.to_string())?;
            // replay into the live session after a reset, so the replayed
            // state stays current
            session.facets_mut().reset();
            session.clear_analytics();
            let frames = script.apply(session).map_err(|e| e.message)?;
            println!("script ran {} actions, {} answers:", script.ui_action_count(), frames.len());
            for frame in frames {
                println!("{}", frame.hifun);
                print!("{}", frame.to_table());
            }
        }
        "record" => {
            // print the current session's click log as a replayable script
            let script = session.recorded_script();
            println!("# {} recorded actions", script.ui_action_count());
            for action in &script.actions {
                println!("{action:?}");
            }
        }
        "query" => {
            let q = line.trim_start_matches("query").trim();
            let results = Engine::builder(store).build().run(q).map_err(|e| e.message())?;
            match results {
                rdf_analytics::sparql::QueryResults::Solutions(s) => print!("{}", s.to_table()),
                rdf_analytics::sparql::QueryResults::Graph(g) => {
                    print!("{}", rdf_analytics::model::ntriples::serialize(&g))
                }
                rdf_analytics::sparql::QueryResults::Boolean(b) => println!("{b}"),
            }
        }
        other => return Err(format!("unknown command '{other}' — try 'help'")),
    }
    Ok(Continue::Yes)
}

fn show_focus(store: &Store, session: &AnalyticsSession<'_>) {
    let ext = session.facets().extension();
    println!(
        "focus: {} resources — {}",
        ext.len(),
        session.facets().intent().describe(store)
    );
}

/// The most common IRI namespace in the KG (everything up to and including
/// the last `#` or `/`), used to resolve bare names in `hifun` queries.
fn dominant_namespace(store: &Store) -> String {
    let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for (_, t) in store.terms() {
        if let Term::Iri(iri) = t {
            if let Some(cut) = iri.rfind(['#', '/']) {
                *counts.entry(&iri[..cut + 1]).or_insert(0) += 1;
            }
        }
    }
    counts
        .into_iter()
        .filter(|(ns, _)| !ns.starts_with("http://www.w3.org/"))
        .max_by_key(|&(_, n)| n)
        .map(|(ns, _)| ns.to_owned())
        .unwrap_or_default()
}

/// Resolve a name: full IRI in <>, or a local name matched against the KG.
fn resolve(store: &Store, word: Option<&str>) -> Result<TermId, String> {
    let w = word.ok_or("missing name")?;
    if let Some(iri) = w.strip_prefix('<').and_then(|x| x.strip_suffix('>')) {
        return store.lookup_iri(iri).ok_or(format!("IRI not in KG: {iri}"));
    }
    let matches: Vec<TermId> = store
        .terms()
        .filter(|(_, t)| matches!(t, Term::Iri(iri) if rdf_analytics::model::term::local_name(iri) == w))
        .map(|(id, _)| id)
        .collect();
    match matches.len() {
        0 => Err(format!("no resource named '{w}'")),
        1 => Ok(matches[0]),
        n => Err(format!("'{w}' is ambiguous ({n} matches) — use a full <iri>")),
    }
}

/// Resolve a clicked value: a name, or a literal (number / quoted string).
fn resolve_term(store: &Store, word: Option<&str>) -> Result<TermId, String> {
    let w = word.ok_or("missing value")?;
    if let Ok(v) = w.parse::<i64>() {
        return store
            .lookup(&Term::integer(v))
            .ok_or(format!("integer {v} not present in KG"));
    }
    if let Some(s) = w.strip_prefix('"').and_then(|x| x.strip_suffix('"')) {
        return store
            .lookup(&Term::string(s))
            .ok_or(format!("string \"{s}\" not present in KG"));
    }
    resolve(store, Some(w))
}

fn parse_path(store: &Store, word: Option<&str>) -> Result<Vec<PathStep>, String> {
    Ok(parse_props(store, word)?.into_iter().map(PathStep::fwd).collect())
}

fn parse_props(store: &Store, word: Option<&str>) -> Result<Vec<TermId>, String> {
    let w = word.ok_or("missing property path")?;
    w.split('/').map(|part| resolve(store, Some(part))).collect()
}

fn parse_bound(word: Option<&str>) -> Result<Option<Value>, String> {
    match word {
        None | Some("*") => Ok(None),
        Some(w) => {
            if let Ok(v) = w.parse::<i64>() {
                return Ok(Some(Value::Int(v)));
            }
            if let Ok(v) = w.parse::<f64>() {
                return Ok(Some(Value::Float(v)));
            }
            if let Some(d) = rdf_analytics::model::Date::parse(w) {
                return Ok(Some(Value::Date(d)));
            }
            Err(format!("cannot parse bound '{w}' (number, date, or *)"))
        }
    }
}

fn chart_of(frame: &rdf_analytics::analytics::AnswerFrame) -> Result<BarChart, String> {
    let series: Vec<String> = frame.headers[frame.headers.len() - 1..].to_vec();
    let data: Vec<BarDatum> = frame
        .rows
        .iter()
        .take(12)
        .map(|row| BarDatum {
            label: row[0].as_ref().map(|t| t.display_name()).unwrap_or_default(),
            values: vec![row
                .last()
                .and_then(|c| c.as_ref())
                .and_then(|t| Value::from_term(t).as_f64())
                .unwrap_or(0.0)],
        })
        .collect();
    BarChart::new("", series, data)
}

const HELP: &str = "\
commands:
  stats                      dataset statistics
  facets                     class markers + property facets with counts
  expand p1/p2               path-expansion markers (Fig 5.5)
  buckets <prop> [n]         interval buckets of a numeric facet (Fig 5.4 d)
  grouped <prop>             value markers grouped by class (Fig 5.4 d)
  class <Name>               click a class marker
  value <prop> <value>       click a facet value
  path p1/p2 = <value>       click a value at the end of a path
  range p1/p2 <min|*> <max|*>  range filter (the ⧩ button)
  group p1/p2 [year|month|day] add a grouping attribute (the G button)
  measure <prop>             set the measure (the ⨊ button)
  ops avg sum max min count  choose aggregate operations
  having <i> <cmp> <num>     restrict the i-th aggregate (HAVING)
  run                        evaluate → Answer Frame (+ chart)
  sparql                     show the generated SPARQL
  explain                    show the evaluation plan of the current query
  intent                     show the state's intention query
  back | reset               undo last click | start over
  hifun (g, m, op)           run a HIFUN query in the paper notation
  script <file>              run a click script from a file
  record                     show this session's click log
  query <sparql>             run raw SPARQL (one line)
  checkpoint                 compact the WAL into a snapshot (--open mode)
  export <file.nt>           N-Triples fallback dump (--open mode)
  quit";
