//! `rdfa-server` — serve a knowledge graph over the SPARQL protocol (the
//! backend of the paper's client–server architecture, Fig 6.1).
//!
//! ```text
//! cargo run --bin rdfa-server -- [file.ttl|file.nt] [port] [--persist DIR] [--facet-cache N] [--max-in-flight N]
//! curl 'http://127.0.0.1:3030/sparql?query=SELECT+%3Fs+WHERE+%7B+%3Fs+%3Fp+%3Fo+%7D+LIMIT+3'
//! curl -X POST --data 'PREFIX ex: <http://e/> INSERT DATA { ex:a ex:p 1 . }' http://127.0.0.1:3030/update
//! curl http://127.0.0.1:3030/void
//! curl http://127.0.0.1:3030/healthz
//! ```
//!
//! With `--persist DIR` the store is durable: it recovers from `DIR` on
//! start (snapshot + WAL replay), every update is logged before it is
//! acknowledged, and SIGTERM/SIGINT trigger a graceful shutdown — stop
//! accepting, drain in-flight requests, checkpoint, exit. The WAL fsync
//! policy comes from `RDFA_FSYNC` (`always` | `never` | `every:N`).
//!
//! `--facet-cache N` sizes the generation-keyed marker cache behind
//! `GET /v1/facets` (N cached marker sets; 0 disables caching; default 128).
//! Cache counters are served at `GET /v1/facets/stats`.
//!
//! `--max-in-flight N` caps concurrently-served work-route requests; the
//! excess is shed with `503` + `Retry-After` (0 = unlimited; default 64).
//! Shed counts and the current snapshot generation are in `GET /healthz`.
//!
//! Without a file argument (and an empty/absent persist dir) the demo
//! products KG is served.

use rdf_analytics::server::{Server, ServerConfig};
use rdf_analytics::store::{LoadOptions, PersistConfig, PersistentStore, Store};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Install SIGTERM/SIGINT handlers with the C `signal` call directly — no
/// crate dependency, and an async-signal-safe handler (one atomic store).
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut port = 3030u16;
    let mut persist_dir: Option<String> = None;
    let mut input: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg == "--persist" {
            i += 1;
            match args.get(i) {
                Some(dir) => persist_dir = Some(dir.clone()),
                None => {
                    eprintln!("--persist needs a directory argument");
                    std::process::exit(2);
                }
            }
        } else if arg == "--facet-cache" {
            i += 1;
            match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => config.facet_cache_entries = n,
                None => {
                    eprintln!("--facet-cache needs a numeric entry count");
                    std::process::exit(2);
                }
            }
        } else if arg == "--max-in-flight" {
            i += 1;
            match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => config.max_in_flight = n,
                None => {
                    eprintln!("--max-in-flight needs a numeric request budget (0 = unlimited)");
                    std::process::exit(2);
                }
            }
        } else if let Ok(p) = arg.parse::<u16>() {
            port = p;
        } else {
            input = Some(arg.clone());
        }
        i += 1;
    }

    install_signal_handlers();

    let server = match persist_dir {
        Some(dir) => {
            let mut pstore = PersistentStore::open(&dir, PersistConfig::from_env())
                .unwrap_or_else(|e| {
                    eprintln!("cannot open persistent store at {dir}: {e}");
                    std::process::exit(2);
                });
            let r = pstore.recovery();
            eprintln!(
                "recovered {dir}: generation {}, {} snapshot triples + {} WAL records{}",
                r.generation,
                r.snapshot_triples,
                r.wal_records_replayed,
                match &r.wal_truncation {
                    Some(t) => format!(" (WAL truncated at byte {}: {})", t.offset, t.reason),
                    None => String::new(),
                }
            );
            // a file argument seeds an EMPTY durable store; an already
            // populated one keeps its recovered state
            if let Some(path) = &input {
                if pstore.is_empty() {
                    match load_into_durable(&mut pstore, path) {
                        Ok(n) => eprintln!("loaded {n} triples from {path}"),
                        Err(e) => {
                            eprintln!("cannot load {path}: {e}");
                            std::process::exit(2);
                        }
                    }
                } else {
                    eprintln!("ignoring {path}: store already holds {} triples", pstore.len());
                }
            }
            Server::start_durable(pstore, port, config)
        }
        None => {
            let mut store = Store::new();
            let mut loaded = false;
            if let Some(path) = &input {
                match load_into_plain(&mut store, path) {
                    Ok(n) => eprintln!("loaded {n} triples from {path}"),
                    Err(e) => {
                        eprintln!("cannot load {path}: {e}");
                        std::process::exit(2);
                    }
                }
                loaded = true;
            }
            if !loaded {
                rdf_analytics::datagen::ProductsGenerator::new(300, 7)
                    .generate_into(&mut store, LoadOptions::default());
                eprintln!(
                    "no input file given — serving the demo products KG ({} triples)",
                    store.len()
                );
            }
            Server::start_with(store, port, config)
        }
    };
    let server = server.unwrap_or_else(|e| {
        eprintln!("cannot bind port {port}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "SPARQL endpoint at http://{}/sparql (POST /update, GET /void, GET /healthz, GET /v1/facets) — Ctrl-C or SIGTERM to stop",
        server.addr()
    );
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(200));
    }
    // graceful shutdown: stop accepting, drain in-flight requests, then
    // checkpoint the durable store
    eprintln!("shutting down: draining requests and checkpointing…");
    server.stop();
    eprintln!("bye");
}

fn load_into_plain(store: &mut Store, path: &str) -> Result<usize, String> {
    // streamed, parallel bulk ingest — N-Triples files are never read into
    // memory whole
    if path.ends_with(".nt") {
        store.load_ntriples_path(path, LoadOptions::default())
    } else {
        store.load_turtle_path(path, LoadOptions::default())
    }
    .map(|stats| stats.triples)
    .map_err(|e| e.to_string())
}

fn load_into_durable(store: &mut PersistentStore, path: &str) -> Result<usize, String> {
    if path.ends_with(".nt") {
        store
            .load_ntriples_path(path, LoadOptions::default())
            .map(|stats| stats.triples)
            .map_err(|e| e.to_string())
    } else {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        store.load_turtle(&text).map_err(|e| e.to_string())
    }
}
