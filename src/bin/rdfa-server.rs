//! `rdfa-server` — serve a knowledge graph over the SPARQL protocol (the
//! backend of the paper's client–server architecture, Fig 6.1).
//!
//! ```text
//! cargo run --bin rdfa-server -- [file.ttl|file.nt] [port]
//! curl 'http://127.0.0.1:3030/sparql?query=SELECT+%3Fs+WHERE+%7B+%3Fs+%3Fp+%3Fo+%7D+LIMIT+3'
//! curl -X POST --data 'PREFIX ex: <http://e/> INSERT DATA { ex:a ex:p 1 . }' http://127.0.0.1:3030/update
//! curl http://127.0.0.1:3030/void
//! ```
//!
//! Without a file argument the demo products KG is served.

use rdf_analytics::server::Server;
use rdf_analytics::store::Store;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut store = Store::new();
    let mut port = 3030u16;
    let mut loaded = false;
    for arg in &args {
        if let Ok(p) = arg.parse::<u16>() {
            port = p;
        } else {
            let text = std::fs::read_to_string(arg).unwrap_or_else(|e| {
                eprintln!("cannot read {arg}: {e}");
                std::process::exit(2);
            });
            let result = if arg.ends_with(".nt") {
                store.load_ntriples(&text).map_err(|e| e.to_string())
            } else {
                store.load_turtle(&text).map_err(|e| e.to_string())
            };
            match result {
                Ok(n) => eprintln!("loaded {n} triples from {arg}"),
                Err(e) => {
                    eprintln!("cannot parse {arg}: {e}");
                    std::process::exit(2);
                }
            }
            loaded = true;
        }
    }
    if !loaded {
        store.load_graph(&rdf_analytics::datagen::ProductsGenerator::new(300, 7).generate());
        eprintln!("no input file given — serving the demo products KG ({} triples)", store.len());
    }
    let server = Server::start(store, port).unwrap_or_else(|e| {
        eprintln!("cannot bind port {port}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "SPARQL endpoint at http://{}/sparql (POST /update, GET /void, GET /health) — Ctrl-C to stop",
        server.addr()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
