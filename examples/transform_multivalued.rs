//! The transform (ƒ) button end to end (§4.2.6 and §5.1 "Special cases"):
//! a KG whose `founder` property is multi-valued violates HIFUN's
//! functionality assumption; the feature-creation operators of Table 4.1
//! derive functional features, after which analytics proceed normally.
//!
//! Run with `cargo run --example transform_multivalued`.

use rdf_analytics::analytics::{transform, AnalyticsSession, GroupSpec};
use rdf_analytics::hifun::{AggOp, Applicability};
use rdf_analytics::store::Store;

const EX: &str = "http://example.org/";

fn main() {
    let mut store = Store::new();
    store
        .load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               ex:Dell a ex:Company ; ex:founder ex:MichaelDell ; ex:sector ex:tech .
               ex:HP a ex:Company ; ex:founder ex:BillHewlett , ex:DavePackard ; ex:sector ex:tech .
               ex:Google a ex:Company ; ex:founder ex:LarryPage , ex:SergeyBrin ; ex:sector ex:tech .
               ex:Kodak a ex:Company ; ex:sector ex:imaging .
               ex:BillHewlett ex:nationality ex:US . ex:DavePackard ex:nationality ex:US .
               ex:LarryPage ex:nationality ex:US . ex:SergeyBrin ex:nationality ex:US .
               ex:MichaelDell ex:nationality ex:US .
            "#
        ))
        .unwrap();
    let id = |local: &str| store.lookup_iri(&format!("{EX}{local}")).unwrap();

    // 1. the applicability check (§4.1.1): founder is multi-valued
    let mut session = AnalyticsSession::start(&store);
    session.select_class(id("Company")).unwrap();
    match session.attribute_applicability(id("founder")) {
        Applicability::MultiValued { max_values } => {
            println!("founder is multi-valued (up to {max_values} values) — HIFUN needs a transform")
        }
        other => println!("unexpected: {other:?}"),
    }

    // 2. the ƒ menu suggests a repair; FCO3 (p.count) derives a functional
    //    feature
    let ext = session.facets().extension().to_btree_set();
    let suggestion = transform::suggest(&store, &ext, &format!("{EX}founder"));
    println!("suggested transform: {suggestion:?}");
    let transformed = transform::apply(&store, &ext, &suggestion.expect("a repair is suggested"));
    println!(
        "derived feature {:?} (+{} triples)",
        transformed.features, transformed.added
    );

    // 3. analytics over the derived feature: companies per founder count
    let derived_store = transformed.store;
    let feature = derived_store.lookup_iri(&transformed.features[0]).unwrap();
    let mut session2 = AnalyticsSession::start(&derived_store);
    session2
        .select_class(derived_store.lookup_iri(&format!("{EX}Company")).unwrap())
        .unwrap();
    session2.add_grouping(GroupSpec::property(feature));
    session2.set_ops(vec![AggOp::Count]);
    let frame = session2.run().unwrap();
    println!("\ncompanies by number of founders:");
    println!("{}", frame.to_table());

    // 4. FCO9 (path.maxFreq): the dominant founder nationality per company
    let t = transform::apply(
        &store,
        &ext,
        &transform::Transform::PathMaxFreq {
            p1: format!("{EX}founder"),
            p2: format!("{EX}nationality"),
        },
    );
    println!(
        "FCO9 derived {:?}: {} companies got a dominant-nationality feature",
        t.features, t.added
    );
}
