//! The dissertation's 3D statistical visualizer (systems (1a)/(1b)): country
//! statistics rendered as an interactive "urban area" — one multi-storey
//! cube per country, one storey per feature, volume proportional to the
//! value — plus the spiral layout for the long tail of values.
//!
//! Here the statistics come from an analytic query over an RDF KG (rather
//! than an uploaded CSV), closing the loop: KG → analytics → Answer Frame →
//! CSV/3D scene.
//!
//! Run with `cargo run --example statistics_3d`.

use rdf_analytics::analytics::{AnalyticsSession, GroupSpec, MeasureSpec};
use rdf_analytics::datagen::{ProductsGenerator, EX};
use rdf_analytics::hifun::AggOp;
use rdf_analytics::model::Value;
use rdf_analytics::store::Store;
use rdf_analytics::viz::{spiral_layout, urban_layout, PieChart};

fn main() {
    let mut store = Store::new();
    store.load_graph(&ProductsGenerator::new(600, 11).generate());
    let id = |local: &str| store.lookup_iri(&format!("{EX}{local}")).unwrap();

    // per-country statistics: number of laptops and avg/max price
    let mut session = AnalyticsSession::start(&store);
    session.select_class(id("Laptop")).unwrap();
    session.add_grouping(GroupSpec::path(vec![id("manufacturer"), id("origin")]));
    session.set_measure(MeasureSpec::property(id("price")));
    session.set_ops(vec![AggOp::Count, AggOp::Avg, AggOp::Max]);
    let answer = session.run().unwrap();
    println!("statistics per country ({} rows):", answer.len());
    println!("{}", answer.to_table());

    // CSV interchange (what system (1b) uploads)
    println!("CSV export:\n{}", answer.to_csv());

    // 3D urban scene: one building per country, three storeys
    let entities: Vec<(String, Vec<f64>)> = answer
        .rows
        .iter()
        .map(|row| {
            let label = row[0].as_ref().map(|t| t.display_name()).unwrap_or_default();
            let vals = (1..4)
                .map(|i| {
                    row[i]
                        .as_ref()
                        .and_then(|t| Value::from_term(t).as_f64())
                        .unwrap_or(0.0)
                })
                .collect();
            (label, vals)
        })
        .collect();
    let features: Vec<String> = answer.headers[1..].to_vec();
    let scene = urban_layout(&entities, &features, 2.0, 1.0, 12.0);
    println!("3D urban scene: {} buildings", scene.len());
    for b in &scene {
        println!(
            "  {:<14} at grid {:?}: total height {:.1} ({} storeys)",
            b.label,
            b.grid,
            b.total_height(),
            b.segments.len()
        );
    }
    let obj = rdf_analytics::viz::urban3d::to_obj(&scene);
    println!("OBJ geometry: {} lines", obj.lines().count());

    // spiral layout of laptop counts (biggest country at the center)
    let counts: Vec<f64> = entities.iter().map(|(_, v)| v[0]).collect();
    let layout = spiral_layout(&counts, 1.0);
    println!("\nspiral layout (laptop counts, center-out):");
    for p in layout.iter().take(6) {
        println!(
            "  {:<14} value {:>6.0} at distance {:.1}",
            entities[p.index].0,
            p.value,
            p.distance_from_center()
        );
    }

    // and a pie chart of the same distribution
    let pie = PieChart::new(
        "laptops per country",
        entities.iter().map(|(l, v)| (l.clone(), v[0])).collect(),
    )
    .unwrap();
    println!("\n{}", pie.to_text(32));
}
