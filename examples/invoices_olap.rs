//! Experiment E8 — the HIFUN invoices dataset (Fig 2.7) with the OLAP
//! operators of Chapter 7: roll-up (month → year), drill-down back, slice,
//! dice and pivot (Fig 7.2).
//!
//! Run with `cargo run --example invoices_olap`.

use rdf_analytics::analytics::{AnalyticsSession, GroupSpec, MeasureSpec, OlapOp};
use rdf_analytics::datagen::{InvoicesGenerator, EX};
use rdf_analytics::hifun::{AggOp, DerivedFn};
use rdf_analytics::store::Store;

fn main() {
    let mut store = Store::new();
    store.load_graph(&InvoicesGenerator::new(400, 7).generate());
    println!("generated invoices dataset: {} triples\n", store.len());

    let id = |local: &str| store.lookup_iri(&format!("{EX}{local}")).unwrap();

    // total quantities by branch and month — (takesPlaceAt ⊗ month∘hasDate, inQuantity, SUM)
    let mut session = AnalyticsSession::start(&store);
    session.add_grouping(GroupSpec::property(id("hasDate")).with_derived(DerivedFn::Month));
    session.add_grouping(GroupSpec::property(id("takesPlaceAt")));
    session.set_measure(MeasureSpec::property(id("inQuantity")));
    session.set_ops(vec![AggOp::Sum]);

    let by_month = session.run().unwrap();
    println!("by month × branch: {} groups", by_month.len());
    println!("{}", preview(&by_month.to_table(), 8));

    // roll-up: month → year (Fig 7.2)
    session.roll_up(0).unwrap();
    let by_year = session.run().unwrap();
    println!("after roll-up (month→year): {} groups", by_year.len());
    println!("{}", by_year.to_table());

    // drill-down back to months
    session.drill_down(0).unwrap();
    println!("after drill-down (year→month): {} groups", session.run().unwrap().len());

    // slice: fix branch0 and drop the branch dimension
    session.slice(1, id("branch0")).unwrap();
    let sliced = session.run().unwrap();
    println!("\nafter slice (branch = branch0): {} groups", sliced.len());
    println!("{}", preview(&sliced.to_table(), 6));

    // pivot correspondence table (Fig 7.1)
    println!("OLAP ↔ interaction-model correspondence (Fig 7.1):");
    for op in [OlapOp::RollUp, OlapOp::DrillDown, OlapOp::Slice, OlapOp::Dice, OlapOp::Pivot] {
        println!("  {:?}: {}", op, op.interaction_move());
    }
}

fn preview(table: &str, rows: usize) -> String {
    let mut out: Vec<&str> = table.lines().take(rows + 2).collect();
    if table.lines().count() > rows + 2 {
        out.push("…");
    }
    out.join("\n")
}
