//! Experiment E7 — the Fig 6.2 query: *"average, sum and max price of
//! laptops that have 2 to 4 USB ports, grouped by manufacturer and the
//! origin of manufacturer"*, formulated by GUI actions, translated to
//! SPARQL, answered, charted, and reloaded as a dataset (Fig 6.3).
//!
//! Run with `cargo run --example ecommerce_analytics`.

use rdf_analytics::analytics::{AnalyticsSession, GroupSpec, MeasureSpec};
use rdf_analytics::datagen::{ProductsGenerator, EX};
use rdf_analytics::facets::PathStep;
use rdf_analytics::hifun::AggOp;
use rdf_analytics::model::Value;
use rdf_analytics::store::Store;
use rdf_analytics::viz::{BarChart, BarDatum};

fn main() {
    let mut store = Store::new();
    store.load_graph(&ProductsGenerator::new(500, 42).generate());
    println!("generated products KG: {} triples\n", store.len());

    let id = |local: &str| store.lookup_iri(&format!("{EX}{local}")).unwrap();

    let mut session = AnalyticsSession::start(&store);
    // faceted part: Laptops with 2–4 USB ports
    session.select_class(id("Laptop")).unwrap();
    session
        .select_range(
            &[PathStep::fwd(id("USBPorts"))],
            Some(Value::Int(2)),
            Some(Value::Int(4)),
        )
        .unwrap();
    println!("focus: {} laptops with 2–4 USB ports", session.facets().extension().len());

    // analytics part: the G and ⨊ buttons of Fig 6.2
    session.add_grouping(GroupSpec::property(id("manufacturer")));
    session.add_grouping(GroupSpec::path(vec![id("manufacturer"), id("origin")]));
    session.set_measure(MeasureSpec::property(id("price")));
    session.set_ops(vec![AggOp::Avg, AggOp::Sum, AggOp::Max]);

    println!("\nHIFUN query: {}", session.hifun_query().unwrap());
    println!("\ntranslated SPARQL:\n{}", session.sparql().unwrap());

    let answer = session.run().unwrap();
    println!("Answer Frame ({} rows):", answer.len());
    println!("{}", answer.to_table());

    // 2D chart of the averages (Fig 6.4 left)
    let data: Vec<BarDatum> = answer
        .rows
        .iter()
        .take(8)
        .map(|row| BarDatum {
            label: row[0].as_ref().map(|t| t.display_name()).unwrap_or_default(),
            values: vec![
                cell(row, 2), // avg
                cell(row, 4), // max
            ],
        })
        .collect();
    let chart =
        BarChart::new("price by manufacturer", vec!["avg".into(), "max".into()], data).unwrap();
    println!("{}", chart.to_text(36));

    // reload as a dataset (Fig 6.3 b): the answer becomes explorable
    let derived = answer.load_as_dataset();
    println!(
        "reloaded the Answer Frame as a dataset: {} triples, columns become facets:",
        derived.len()
    );
    let rows = derived.instances_set(derived.lookup_iri("urn:rdfa:af:Row").unwrap());
    let facets = rdf_analytics::facets::property_facets(&derived, &rows);
    for f in &facets {
        println!(
            "  facet {:<24} {} values",
            derived.term(f.property).display_name(),
            f.value_count()
        );
    }
}

fn cell(row: &[Option<rdf_analytics::model::Term>], i: usize) -> f64 {
    row.get(i)
        .and_then(|c| c.as_ref())
        .and_then(|t| Value::from_term(t).as_f64())
        .unwrap_or(0.0)
}
