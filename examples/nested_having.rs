//! Example 4 of §5.1 — HAVING via Answer-Frame reload, and nesting:
//! *"average price of laptops grouped by company and year, only for groups
//! whose average price is above a threshold t"*, then a second-level
//! analysis over the reloaded answer.
//!
//! Run with `cargo run --example nested_having`.

use rdf_analytics::analytics::{AnalyticsSession, GroupSpec, MeasureSpec};
use rdf_analytics::datagen::{ProductsGenerator, EX};
use rdf_analytics::facets::PathStep;
use rdf_analytics::hifun::{AggOp, DerivedFn};
use rdf_analytics::model::Value;
use rdf_analytics::store::Store;

fn main() {
    let mut store = Store::new();
    store.load_graph(&ProductsGenerator::new(300, 99).generate());
    let id = |local: &str| store.lookup_iri(&format!("{EX}{local}")).unwrap();

    // level 1: average price by company and release year
    let mut session = AnalyticsSession::start(&store);
    session.select_class(id("Laptop")).unwrap();
    session.add_grouping(GroupSpec::property(id("manufacturer")));
    session.add_grouping(GroupSpec::property(id("releaseDate")).with_derived(DerivedFn::Year));
    session.set_measure(MeasureSpec::property(id("price")));
    session.set_ops(vec![AggOp::Avg]);
    let level1 = session.run().unwrap();
    println!("level-1 answer: avg price by company × year — {} groups", level1.len());

    // the "Explore with FS" button: load the AF as a new dataset (Fig 5.2)
    let derived = level1.load_as_dataset();
    println!("reloaded as dataset: {} triples", derived.len());

    // restrict avg(price) ≥ t — this IS the HAVING clause (§5.3.3)
    let threshold = 1500.0;
    let mut nested = AnalyticsSession::start(&derived);
    let row_class = derived.lookup_iri("urn:rdfa:af:Row").unwrap();
    nested.select_class(row_class).unwrap();
    let avg_prop = derived.lookup_iri(&level1.column_property(2)).unwrap();
    nested
        .select_range(&[PathStep::fwd(avg_prop)], Some(Value::Float(threshold)), None)
        .unwrap();
    println!(
        "after HAVING avg(price) >= {threshold}: {} of {} groups remain",
        nested.facets().extension().len(),
        level1.len()
    );

    // level 2 (nested analytics): among the surviving groups, count groups
    // per company — an analytic query over an analytic answer
    let company_prop = derived.lookup_iri(&level1.column_property(0)).unwrap();
    nested.add_grouping(GroupSpec::property(company_prop));
    nested.set_ops(vec![AggOp::Count]);
    let level2 = nested.run().unwrap();
    println!("\nlevel-2 answer: expensive (company, year) groups per company:");
    println!("{}", level2.to_table());

    // sanity check against the direct HAVING form of the same query
    let mut direct = AnalyticsSession::start(&store);
    direct.select_class(id("Laptop")).unwrap();
    direct.add_grouping(GroupSpec::property(id("manufacturer")));
    direct.add_grouping(GroupSpec::property(id("releaseDate")).with_derived(DerivedFn::Year));
    direct.set_measure(MeasureSpec::property(id("price")));
    direct.set_ops(vec![AggOp::Avg]);
    direct.add_having(
        0,
        rdf_analytics::hifun::CondOp::Ge,
        rdf_analytics::model::Term::decimal(threshold),
    );
    let survivors = direct.run().unwrap();
    println!(
        "cross-check — direct HAVING form returns {} groups (reload path kept {})",
        survivors.len(),
        nested.facets().extension().len()
    );
    assert_eq!(survivors.len(), nested.facets().extension().len());
}
