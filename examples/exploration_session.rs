//! Experiment E6 — plain faceted exploration on the Fig 5.3 data,
//! reproducing the transition-marker listings of Fig 5.4 and the
//! path-expansion markers of Fig 5.5.
//!
//! Run with `cargo run --example exploration_session`.

use rdf_analytics::datagen::{products_fixture, EX};
use rdf_analytics::facets::{
    markers::{render_class_markers, render_property_facets},
    FacetedSession, PathStep,
};
use rdf_analytics::store::Store;

fn main() {
    let mut store = Store::new();
    store.load_graph(&products_fixture());
    let id = |local: &str| store.lookup_iri(&format!("{EX}{local}")).unwrap();

    let mut session = FacetedSession::start(&store);

    // Fig 5.4 (a)/(b): class-based transition markers
    println!("— class-based transition markers (Fig 5.4 a/b) —");
    println!("{}", render_class_markers(&store, &session.class_markers(), 0));

    // click Laptop
    session.select_class(id("Laptop")).unwrap();
    println!("clicked class Laptop → {} resources in focus\n", session.extension().len());

    // Fig 5.4 (c): property-based markers with counts
    println!("— property-based transition markers (Fig 5.4 c) —");
    println!("{}", render_property_facets(&store, &session.facets(), 0));

    // Fig 5.4 (d): value markers grouped by the values' classes
    let gv = rdf_analytics::facets::grouped_values(&store, session.extension(), id("hardDrive"));
    println!("— value grouping (Fig 5.4 d) —");
    println!(
        "{}",
        rdf_analytics::facets::markers::render_grouped_values(&store, id("hardDrive"), &gv)
    );

    // §5.3.1 Pr⁻¹: inverse facets switch the entity type
    let companies = [id("DELL"), id("Lenovo")].into_iter().collect();
    let inverse = rdf_analytics::facets::inverse_property_facets(&store, &companies);
    println!("— inverse facets over the companies (Pr⁻¹, §5.3.1) —");
    for f in &inverse {
        println!(
            "  ^{} ({} linking resources)",
            store.term(f.property).display_name(),
            f.values.len()
        );
    }
    println!();

    // Fig 5.5: expand manufacturer ▷ origin
    let path = [PathStep::fwd(id("manufacturer")), PathStep::fwd(id("origin"))];
    println!("— path expansion: by manufacturer ▷ by origin (Fig 5.5) —");
    for (v, n) in session.expand(&path) {
        println!("  {} ({n})", store.term(v).display_name());
    }

    // click USA at the end of the path (Eq. 5.1 back-propagation)
    session.select_path_value(&path, id("USA")).unwrap();
    println!("\nclicked USA → {} resources in focus:", session.extension().len());
    for t in session.state().resources(&store) {
        println!("  {}", t.display_name());
    }

    // the intention of the state, expressed in SPARQL (§5.5)
    println!("\nintention of the current state (§5.5):\n{}", session.intent_sparql());
    println!("breadcrumb: {}", session.intent().describe(&store));

    // back undoes the last click
    session.back();
    println!("after back: {} resources", session.extension().len());
}
