//! The COVID-19 analytics scenario (dissertation system (1a) + the §3.2.3
//! health-domain example query): monthly case curves per country via the
//! interaction model, a line chart, an OLAP roll-up to the year level, and
//! the 3D urban scene of country totals.
//!
//! Run with `cargo run --example covid_timeline`.

use rdf_analytics::analytics::{AnalyticsSession, GroupSpec, MeasureSpec};
use rdf_analytics::datagen::{covid::COUNTRIES, CovidGenerator, EX};
use rdf_analytics::hifun::{AggOp, DerivedFn};
use rdf_analytics::model::Value;
use rdf_analytics::store::Store;
use rdf_analytics::viz::{urban_layout, LineChart};
use std::collections::BTreeMap;

fn main() {
    let mut store = Store::new();
    store.load_graph(&CovidGenerator::new(180, 21).generate());
    let id = |local: &str| store.lookup_iri(&format!("{EX}{local}")).unwrap();
    println!("COVID KG: {} triples over {} countries\n", store.len(), COUNTRIES.len());

    // monthly new cases per country: (ofCountry ⊗ month∘onDate, newCases, SUM)
    let mut session = AnalyticsSession::start(&store);
    session.select_class(id("Observation")).unwrap();
    session.add_grouping(GroupSpec::property(id("ofCountry")));
    session.add_grouping(GroupSpec::property(id("onDate")).with_derived(DerivedFn::Month));
    session.set_measure(MeasureSpec::property(id("newCases")));
    session.set_ops(vec![AggOp::Sum]);
    let frame = session.run().unwrap();
    println!("HIFUN: {}", frame.hifun);
    println!("{} (country, month) groups", frame.len());

    // pivot the answer into per-country monthly series for the line chart
    let mut series: BTreeMap<String, BTreeMap<i64, f64>> = BTreeMap::new();
    for row in &frame.rows {
        let country = row[0].as_ref().unwrap().display_name();
        let month = Value::from_term(row[1].as_ref().unwrap()).as_f64().unwrap() as i64;
        let cases = Value::from_term(row[2].as_ref().unwrap()).as_f64().unwrap();
        series.entry(country).or_default().insert(month, cases);
    }
    let months: Vec<i64> = (1..=6).collect();
    let chart = LineChart::new(
        "monthly new cases",
        months.iter().map(|m| format!("M{m}")).collect(),
        series
            .iter()
            .take(3)
            .map(|(c, by_month)| {
                (
                    c.clone(),
                    months.iter().map(|m| by_month.get(m).copied().unwrap_or(0.0)).collect(),
                )
            })
            .collect(),
    )
    .unwrap();
    println!("{}", chart.to_text(10));

    // OLAP roll-up: month → year (one total per country)
    session.roll_up(1).unwrap();
    let by_year = session.run().unwrap();
    println!("after roll-up (month → year): {} groups", by_year.len());
    println!("{}", by_year.to_table());

    // 3D urban scene of totals: cases/recoveries/deaths per country
    session.clear_analytics();
    session.add_grouping(GroupSpec::property(id("ofCountry")));
    session.set_measure(MeasureSpec::property(id("newCases")));
    session.set_ops(vec![AggOp::Sum]);
    let cases = session.run().unwrap();
    session.clear_analytics();
    session.add_grouping(GroupSpec::property(id("ofCountry")));
    session.set_measure(MeasureSpec::property(id("deaths")));
    session.set_ops(vec![AggOp::Sum]);
    let deaths = session.run().unwrap();
    let deaths_by: BTreeMap<String, f64> = deaths
        .rows
        .iter()
        .map(|r| {
            (
                r[0].as_ref().unwrap().display_name(),
                Value::from_term(r[1].as_ref().unwrap()).as_f64().unwrap(),
            )
        })
        .collect();
    let entities: Vec<(String, Vec<f64>)> = cases
        .rows
        .iter()
        .map(|r| {
            let c = r[0].as_ref().unwrap().display_name();
            let total = Value::from_term(r[1].as_ref().unwrap()).as_f64().unwrap();
            let d = deaths_by.get(&c).copied().unwrap_or(0.0);
            (c, vec![total, d * 50.0]) // scale deaths for visibility
        })
        .collect();
    let scene = urban_layout(
        &entities,
        &["cases".into(), "deaths×50".into()],
        2.0,
        1.0,
        10.0,
    );
    println!("3D city: one building per country");
    for b in &scene {
        println!("  {:<12} total height {:.1}", b.label, b.total_height());
    }
}
