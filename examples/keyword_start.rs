//! Starting the interaction from keyword-search results (§5.4.1's second
//! starting point): a keyword query seeds the faceted session, which then
//! flows into analytics as usual.
//!
//! Run with `cargo run --example keyword_start`.

use rdf_analytics::analytics::{AnalyticsSession, GroupSpec};
use rdf_analytics::datagen::{products_fixture, EX};
use rdf_analytics::facets::FacetedSession;
use rdf_analytics::hifun::AggOp;
use rdf_analytics::store::{KeywordIndex, Store};

fn main() {
    let mut store = Store::new();
    store.load_graph(&products_fixture());

    // build the keyword index once per dataset
    let index = KeywordIndex::build(&store);
    println!("indexed {} resources", index.len());

    // keyword query → ranked hits
    let query = "dell laptop";
    println!("\nkeyword query: {query:?}");
    for hit in index.search(query).iter().take(5) {
        println!("  {:<12} score {:.2}", store.term(hit.resource).display_name(), hit.score);
    }

    // seed a faceted session with the top hits
    let results = index.search_set(query, 10);
    let session = FacetedSession::start_from(&store, results);
    println!("\nfaceted session over {} keyword results; facets:", session.extension().len());
    for f in session.facets() {
        println!(
            "  by {} ({} values)",
            store.term(f.property).display_name(),
            f.value_count()
        );
    }

    // analytics over the keyword result set: count hits per manufacturer
    let id = |local: &str| store.lookup_iri(&format!("{EX}{local}")).unwrap();
    let mut analytics = AnalyticsSession::start_from(&store, index.search_set(query, 10));
    analytics.add_grouping(GroupSpec::property(id("manufacturer")));
    analytics.set_ops(vec![AggOp::Count]);
    let frame = analytics.run().unwrap();
    println!("\nhits per manufacturer:");
    println!("{}", frame.to_table());
}
