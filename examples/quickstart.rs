//! Quickstart: load the running-example products KG and formulate the first
//! two analytic queries of §5.1 through the interaction model.
//!
//! Run with `cargo run --example quickstart`.

use rdf_analytics::analytics::{AnalyticsSession, GroupSpec, MeasureSpec};
use rdf_analytics::datagen::{products_fixture, EX};
use rdf_analytics::hifun::AggOp;
use rdf_analytics::store::Store;

fn main() {
    // 1. load the KG of Fig 5.3
    let mut store = Store::new();
    store.load_graph(&products_fixture());
    println!("loaded {} triples ({} entailed)\n", store.len(), store.len_entailed());

    let id = |local: &str| store.lookup_iri(&format!("{EX}{local}")).unwrap();

    // 2. Example 1 (§5.1): average price of laptops with 2 USB ports
    let mut session = AnalyticsSession::start(&store);
    session.select_class(id("Laptop")).unwrap();
    session
        .select_value(id("USBPorts"), store.lookup(&rdf_analytics::model::Term::integer(2)).unwrap())
        .unwrap();
    session.set_measure(MeasureSpec::property(id("price")));
    session.set_ops(vec![AggOp::Avg]);

    let answer = session.run().unwrap();
    println!("Example 1 — {}", answer.hifun);
    if let Some(sparql) = &answer.sparql {
        println!("translated SPARQL:\n{sparql}");
    }
    println!("{}", answer.to_table());

    // 3. Example 2 (§5.1): count of laptops grouped by manufacturer's country
    session.clear_analytics();
    session.add_grouping(GroupSpec::path(vec![id("manufacturer"), id("origin")]));
    session.set_ops(vec![AggOp::Count]);
    let answer = session.run().unwrap();
    println!("Example 2 — {}", answer.hifun);
    println!("{}", answer.to_table());

    // 4. the same grouped answer as a 2D chart
    let chart = rdf_analytics::viz::BarChart::new(
        "laptops by manufacturer country",
        vec!["count".into()],
        answer
            .rows
            .iter()
            .map(|row| rdf_analytics::viz::BarDatum {
                label: row[0].as_ref().map(|t| t.display_name()).unwrap_or_default(),
                values: vec![row[1]
                    .as_ref()
                    .and_then(|t| rdf_analytics::model::Value::from_term(t).as_f64())
                    .unwrap_or(0.0)],
            })
            .collect(),
    )
    .unwrap();
    println!("{}", chart.to_text(30));
}
